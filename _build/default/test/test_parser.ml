(* Tests for the recursive-descent C parser: declarations, declarators,
   typedef sensitivity, statements, expressions, composites. *)

open Cla_cfront
open Cast

let parse src = (Cparser.parse_string ~file:"t.c" src).Cparser.tunit

let parse_ok name src =
  Alcotest.test_case name `Quick (fun () ->
      try ignore (parse src)
      with Cparser.Parse_error (m, l) ->
        Alcotest.fail (Fmt.str "parse error: %s at %a" m Cla_ir.Loc.pp l))

let parse_fails name src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) "must fail" true
        (try
           ignore (parse src);
           false
         with Cparser.Parse_error _ | Clexer.Error _ -> true))

(* find the first declaration of [name] in the unit *)
let decl_of tu name =
  List.find_map
    (function
      | Tdecl ds -> List.find_opt (fun d -> d.dname = name) ds
      | Tfundef _ -> None)
    tu.tops

let typ_str t = Cast.typ_to_string t

let check_typ name src var expected =
  Alcotest.test_case name `Quick (fun () ->
      let tu = parse src in
      match decl_of tu var with
      | Some d -> Alcotest.(check string) var expected (typ_str d.dtyp)
      | None -> Alcotest.fail ("no declaration of " ^ var))

(* ------------------------------------------------------------------ *)
(* Declarators                                                         *)
(* ------------------------------------------------------------------ *)

let declarator_tests =
  [
    check_typ "simple int" "int x;" "x" "int";
    check_typ "pointer" "int *p;" "p" "int*";
    check_typ "pointer to pointer" "int **pp;" "pp" "int**";
    check_typ "array" "int a[10];" "a" "int[]";
    check_typ "array of pointers" "int *a[10];" "a" "int*[]";
    check_typ "pointer to array" "int (*pa)[10];" "pa" "int[]*";
    check_typ "function pointer" "int (*fp)(int, char);" "fp" "int(int,char)*";
    check_typ "array of function pointers" "int (*tbl[4])(void);" "tbl" "int()*[]";
    check_typ "function returning pointer" "int *f(void);" "f" "int*()";
    check_typ "const qualified" "const unsigned long x;" "x" "unsigned long";
    check_typ "struct type" "struct S { int a; } s;" "s" "struct S";
    check_typ "union type" "union U { int a; float b; } u;" "u" "union U";
    check_typ "enum type" "enum E { A, B } e;" "e" "enum E";
    check_typ "multi declarators"
      "int x, *p, a[3];" "p" "int*";
    check_typ "2d array" "int m[3][4];" "m" "int[][]";
    check_typ "ptr to fn returning ptr" "char *(*f)(void);" "f" "char*()*";
  ]

(* ------------------------------------------------------------------ *)
(* Typedefs                                                            *)
(* ------------------------------------------------------------------ *)

let test_typedef_basic () =
  let tu = parse "typedef int myint; myint x;" in
  match decl_of tu "x" with
  | Some d -> Alcotest.(check string) "uses typedef" "myint" (typ_str d.dtyp)
  | None -> Alcotest.fail "x not declared"

let test_typedef_struct () =
  let tu = parse "typedef struct S { int a; } S_t; S_t s;" in
  (match decl_of tu "s" with
  | Some d -> Alcotest.(check string) "typedef name" "S_t" (typ_str d.dtyp)
  | None -> Alcotest.fail "s not declared");
  Alcotest.(check int) "struct collected" 1 (List.length tu.comps)

let test_typedef_disambiguation () =
  (* "T * x;" is a declaration when T is a typedef, an expression otherwise *)
  let tu = parse "typedef int T; void f(void) { T * x; }" in
  ignore tu;
  (* and parses as multiplication when T is an object *)
  let tu2 = parse "void f(void) { int T, x, y; y = T * x; }" in
  ignore tu2

let test_typedef_shadowing () =
  (* a local variable may shadow a typedef name *)
  ignore (parse "typedef int T; void f(void) { int T; T = 3; }")

(* ------------------------------------------------------------------ *)
(* Composites                                                          *)
(* ------------------------------------------------------------------ *)

let test_nested_struct () =
  let tu = parse "struct A { struct B { int x; } b; int y; };" in
  Alcotest.(check int) "both structs collected" 2 (List.length tu.comps)

let test_anon_struct_tag () =
  let tu = parse "struct { int x; } v;" in
  match tu.comps with
  | [ c ] ->
      Alcotest.(check bool) "synthesized tag" true
        (String.length c.ctag > 0 && c.ctag.[0] = '$')
  | _ -> Alcotest.fail "expected one struct"

let test_bitfields () =
  let tu = parse "struct F { int a : 3; unsigned b : 1; int : 2; int c; };" in
  match tu.comps with
  | [ c ] -> Alcotest.(check int) "named fields" 3 (List.length c.cfields)
  | _ -> Alcotest.fail "expected one struct"

let test_enum_values () =
  let tu = parse "enum E { A, B = 10, C };" in
  match tu.enums with
  | [ (_, items) ] ->
      Alcotest.(check int) "three enumerators" 3 (List.length items);
      Alcotest.(check bool) "B = 10" true (List.assoc "B" items = Some 10L)
  | _ -> Alcotest.fail "expected one enum"

(* ------------------------------------------------------------------ *)
(* Functions                                                           *)
(* ------------------------------------------------------------------ *)

let fundef_of tu name =
  List.find_map
    (function Tfundef f when f.fname = name -> Some f | _ -> None)
    tu.tops

let test_fundef () =
  let tu = parse "int add(int a, int b) { return a + b; }" in
  match fundef_of tu "add" with
  | Some f ->
      Alcotest.(check int) "params" 2 (List.length f.fparams);
      Alcotest.(check string) "return type" "int" (typ_str f.freturn)
  | None -> Alcotest.fail "add not parsed as fundef"

let test_kr_fundef () =
  let tu = parse "int f(a, b) int a; int b; { return a; }" in
  match fundef_of tu "f" with
  | Some f -> Alcotest.(check int) "K&R params" 2 (List.length f.fparams)
  | None -> Alcotest.fail "K&R definition not parsed"

let test_variadic () =
  let tu = parse "int printf_like(char *fmt, ...) { return 0; }" in
  match fundef_of tu "printf_like" with
  | Some f -> Alcotest.(check bool) "variadic" true f.fvariadic
  | None -> Alcotest.fail "not parsed"

let test_void_params () =
  let tu = parse "int f(void) { return 0; }" in
  match fundef_of tu "f" with
  | Some f -> Alcotest.(check int) "no params" 0 (List.length f.fparams)
  | None -> Alcotest.fail "not parsed"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Extract the expression of the first expression-statement of function f *)
let first_expr tu =
  List.find_map
    (function
      | Tfundef f ->
          List.find_map
            (fun s -> match s.sdesc with Sexpr e -> Some e | _ -> None)
            f.fbody
      | _ -> None)
    tu.tops

let check_expr name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let tu = parse ("void f(void) { " ^ src ^ " }") in
      match first_expr tu with
      | Some e -> Alcotest.(check string) name expected (Cast.expr_to_string e)
      | None -> Alcotest.fail "no expression")

let expr_tests =
  [
    check_expr "precedence mul over add" "x = a + b * c;" "x = (a + (b * c))";
    check_expr "left assoc" "x = a - b - c;" "x = ((a - b) - c)";
    check_expr "shift vs compare" "x = a << 2 < b;" "x = ((a << 2) < b)";
    check_expr "bitand vs eq" "x = a & b == c;" "x = (a & (b == c))";
    check_expr "logic" "x = a && b || c;" "x = ((a && b) || c)";
    check_expr "assign right assoc" "a = b = c;" "a = b = c";
    check_expr "conditional" "x = a ? b : c;" "x = (a ? b : c)";
    check_expr "unary deref" "*p = x;" "*(p) = x";
    check_expr "addrof" "p = &x;" "p = &(x)";
    check_expr "member" "s.x = 1;" "(s).x = 1";
    check_expr "arrow chain" "p->q->r = 1;" "((p)->q)->r = 1";
    check_expr "index" "a[i] = 0;" "(a)[i] = 0";
    check_expr "call" "g(1, x);" "(g)(1, x)";
    check_expr "cast" "x = (long)y;" "x = (long)(y)";
    check_expr "sizeof type" "x = sizeof(int);" "x = sizeof(int)";
    check_expr "sizeof expr" "x = sizeof x;" "x = sizeof(x)";
    check_expr "compound assign" "x += 2;" "x += 2";
    check_expr "comma" "x = (a, b);" "x = (a, b)";
    check_expr "postincr" "x++;" "(x)++";
    check_expr "preincr" "++x;" "++(x)";
    check_expr "deref of cast" "x = *(int *)p;" "x = *((int*)(p))";
    check_expr "string concat" {|s = "ab" "cd";|} "s = \"abcd\"";
    check_expr "funptr call" "(*fp)(3);" "(*(fp))(3)";
  ]

(* ------------------------------------------------------------------ *)
(* Statements & misc                                                   *)
(* ------------------------------------------------------------------ *)

let statement_tests =
  [
    parse_ok "if/else" "void f(int x) { if (x) x = 1; else x = 2; }";
    parse_ok "while" "void f(int x) { while (x) x--; }";
    parse_ok "do-while" "void f(int x) { do x--; while (x); }";
    parse_ok "for" "void f(void) { int i; for (i = 0; i < 10; i++) ; }";
    parse_ok "for with decl" "void f(void) { for (int i = 0; i < 10; i++) ; }";
    parse_ok "switch" "void f(int x) { switch (x) { case 1: x = 2; break; default: x = 0; } }";
    parse_ok "goto/labels" "void f(void) { goto end; end: ; }";
    parse_ok "nested blocks" "void f(void) { { int x; { int y; y = x; } } }";
    parse_ok "decl after stmt" "void f(void) { f(); int x; x = 1; }";
    parse_ok "empty statements" "void f(void) { ;;; }";
    parse_ok "designated init" "struct P { int x, y; }; struct P p = { .y = 2, .x = 1 };";
    parse_ok "array init" "int a[3] = { 1, 2, 3 };";
    parse_ok "nested init" "struct Q { int a[2]; int b; }; struct Q q = { { 1, 2 }, 3 };";
    parse_ok "compound literal" "struct P { int x; }; void f(void) { g((struct P){ 1 }); }";
    parse_ok "gnu attribute" "int x __attribute__((unused));";
    parse_ok "extern decl in function" "int g; void f(void) { extern int g; g = 1; }";
    parse_ok "old-style empty params" "int f(); int g(void) { return f(1, 2); }";
    parse_ok "static function" "static int f(void) { return 1; }";
    parse_fails "missing semicolon" "int x";
    parse_fails "unbalanced brace" "void f(void) { if (x) { }";
    parse_fails "bad initializer" "int x = ;";
  ]

let () =
  Alcotest.run "parser"
    [
      ("declarators", declarator_tests);
      ( "typedefs",
        [
          Alcotest.test_case "basic" `Quick test_typedef_basic;
          Alcotest.test_case "struct typedef" `Quick test_typedef_struct;
          Alcotest.test_case "T*x ambiguity" `Quick test_typedef_disambiguation;
          Alcotest.test_case "shadowing" `Quick test_typedef_shadowing;
        ] );
      ( "composites",
        [
          Alcotest.test_case "nested structs" `Quick test_nested_struct;
          Alcotest.test_case "anonymous tag" `Quick test_anon_struct_tag;
          Alcotest.test_case "bitfields" `Quick test_bitfields;
          Alcotest.test_case "enum values" `Quick test_enum_values;
        ] );
      ( "functions",
        [
          Alcotest.test_case "definition" `Quick test_fundef;
          Alcotest.test_case "K&R style" `Quick test_kr_fundef;
          Alcotest.test_case "variadic" `Quick test_variadic;
          Alcotest.test_case "void params" `Quick test_void_params;
        ] );
      ("expressions", expr_tests);
      ("statements", statement_tests);
    ]
