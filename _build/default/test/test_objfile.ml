(* Tests for the object-file database: serialization roundtrips (unit and
   property-based), block indexing, target lookup, corruption detection. *)

open Cla_ir
open Cla_core

let mk_db () =
  Cla_workload.Genir.generate 1L

let test_roundtrip_vars () =
  let db = mk_db () in
  let v = Objfile.view_of_string (Objfile.write db) in
  Alcotest.(check int) "var count" (Array.length db.Objfile.vars) (Objfile.n_vars v);
  Array.iteri
    (fun i (vi : Objfile.varinfo) ->
      let ri = v.Objfile.rvars.(i) in
      Alcotest.(check string) "name" vi.Objfile.vname ri.Objfile.vname;
      Alcotest.(check bool) "kind" true (vi.Objfile.vkind = ri.Objfile.vkind);
      Alcotest.(check bool) "linkage" true (vi.Objfile.vlinkage = ri.Objfile.vlinkage))
    db.Objfile.vars

let test_roundtrip_statics () =
  let db = mk_db () in
  let v = Objfile.view_of_string (Objfile.write db) in
  Alcotest.(check int) "static count" (List.length db.Objfile.statics)
    (Array.length v.Objfile.rstatics);
  List.iteri
    (fun i (p : Objfile.prim_rec) ->
      let r = v.Objfile.rstatics.(i) in
      Alcotest.(check int) "dst" p.Objfile.pdst r.Objfile.pdst;
      Alcotest.(check int) "src" p.Objfile.psrc r.Objfile.psrc)
    db.Objfile.statics

let test_roundtrip_blocks () =
  let db = mk_db () in
  let v = Objfile.view_of_string (Objfile.write db) in
  Array.iteri
    (fun src prims ->
      let read = Objfile.read_block v src in
      Alcotest.(check int)
        (Fmt.str "block %d size" src)
        (List.length prims) (List.length read);
      List.iter2
        (fun (a : Objfile.prim_rec) (b : Objfile.prim_rec) ->
          Alcotest.(check bool) "kind" true (a.Objfile.pkind = b.Objfile.pkind);
          Alcotest.(check int) "dst" a.Objfile.pdst b.Objfile.pdst;
          Alcotest.(check int) "src implicit" src b.Objfile.psrc)
        prims read)
    db.Objfile.blocks

let test_roundtrip_meta () =
  let db = mk_db () in
  let v = Objfile.view_of_string (Objfile.write db) in
  Alcotest.(check int) "counts preserved"
    (Prim.total db.Objfile.meta.Objfile.mcounts)
    (Prim.total v.Objfile.rmeta.Objfile.mcounts)

let test_roundtrip_funs () =
  let db = mk_db () in
  let v = Objfile.view_of_string (Objfile.write db) in
  Alcotest.(check int) "fundefs" (List.length db.Objfile.fundefs)
    (Array.length v.Objfile.rfundefs);
  Alcotest.(check int) "indirects" (List.length db.Objfile.indirects)
    (Array.length v.Objfile.rindirects);
  List.iteri
    (fun i (f : Objfile.fund_rec) ->
      let r = v.Objfile.rfundefs.(i) in
      Alcotest.(check int) "fvar" f.Objfile.ffvar r.Objfile.ffvar;
      Alcotest.(check int) "arity" f.Objfile.farity r.Objfile.farity;
      Alcotest.(check int) "ret" f.Objfile.fret r.Objfile.fret)
    db.Objfile.fundefs

let test_block_rereadable () =
  (* the load-and-throw-away strategy: reading a block twice gives the
     same records *)
  let v = Objfile.view_of_string (Objfile.write (mk_db ())) in
  for src = 0 to Objfile.n_vars v - 1 do
    let a = Objfile.read_block v src in
    let b = Objfile.read_block v src in
    Alcotest.(check int) "same size" (List.length a) (List.length b)
  done

let test_find_targets () =
  let db = mk_db () in
  let v = Objfile.view_of_string (Objfile.write db) in
  (* every plain variable must be findable by name *)
  Array.iteri
    (fun i (vi : Objfile.varinfo) ->
      match vi.Objfile.vkind with
      | Var.Global ->
          let found = Objfile.find_targets v vi.Objfile.vname in
          Alcotest.(check bool)
            (Fmt.str "find %s" vi.Objfile.vname)
            true (List.mem i found)
      | _ -> ())
    db.Objfile.vars;
  Alcotest.(check (list int)) "missing name" [] (Objfile.find_targets v "no_such")

let test_corrupt_detection () =
  let data = Objfile.write (mk_db ()) in
  let bad = "XXXX" ^ String.sub data 4 (String.length data - 4) in
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Objfile.view_of_string bad);
       false
     with Binio.Corrupt _ -> true);
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Objfile.view_of_string (String.sub data 0 20));
       false
     with Binio.Corrupt _ -> true)

let test_save_load_disk () =
  let db = mk_db () in
  let path = Filename.temp_file "cla_test" ".clo" in
  Objfile.save path db;
  let v = Objfile.load path in
  Sys.remove path;
  Alcotest.(check int) "vars" (Array.length db.Objfile.vars) (Objfile.n_vars v)

(* ---------------- binio primitives ---------------- *)

let test_varint_roundtrip () =
  let w = Binio.writer () in
  let values = [ 0; 1; 127; 128; 300; 65535; 1 lsl 20; 1 lsl 40 ] in
  List.iter (Binio.varint w) values;
  let r = Binio.reader (Binio.contents w) in
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (Binio.rvarint r))
    values;
  Alcotest.(check bool) "at end" true (Binio.at_end r)

let test_bytes_roundtrip () =
  let w = Binio.writer () in
  Binio.bytes_ w "hello";
  Binio.bytes_ w "";
  Binio.bytes_ w (String.make 1000 'x');
  let r = Binio.reader (Binio.contents w) in
  Alcotest.(check string) "s1" "hello" (Binio.rbytes r);
  Alcotest.(check string) "s2" "" (Binio.rbytes r);
  Alcotest.(check int) "s3 length" 1000 (String.length (Binio.rbytes r))

let test_varint_negative_rejected () =
  let w = Binio.writer () in
  Alcotest.(check bool) "negative rejected" true
    (try
       Binio.varint w (-1);
       false
     with Invalid_argument _ -> true)

(* ---------------- qcheck: random database roundtrips ---------------- *)

let qcheck_roundtrip =
  QCheck.Test.make ~count:50 ~name:"random db roundtrips losslessly"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let db = Cla_workload.Genir.generate (Int64.of_int seed) in
      let v = Objfile.view_of_string (Objfile.write db) in
      Array.length db.Objfile.vars = Objfile.n_vars v
      && List.length db.Objfile.statics = Array.length v.Objfile.rstatics
      && Array.for_all2
           (fun prims src_ok -> prims = src_ok)
           (Array.map List.length db.Objfile.blocks)
           (Array.init (Objfile.n_vars v) (fun i ->
                List.length (Objfile.read_block v i))))

let qcheck_double_serialize =
  QCheck.Test.make ~count:20 ~name:"serialization is deterministic"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let db = Cla_workload.Genir.generate (Int64.of_int seed) in
      String.equal (Objfile.write db) (Objfile.write db))

let () =
  Alcotest.run "objfile"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "vars" `Quick test_roundtrip_vars;
          Alcotest.test_case "statics" `Quick test_roundtrip_statics;
          Alcotest.test_case "blocks" `Quick test_roundtrip_blocks;
          Alcotest.test_case "meta" `Quick test_roundtrip_meta;
          Alcotest.test_case "functions" `Quick test_roundtrip_funs;
          Alcotest.test_case "disk" `Quick test_save_load_disk;
        ] );
      ( "access",
        [
          Alcotest.test_case "blocks re-readable" `Quick test_block_rereadable;
          Alcotest.test_case "target lookup" `Quick test_find_targets;
          Alcotest.test_case "corruption" `Quick test_corrupt_detection;
        ] );
      ( "binio",
        [
          Alcotest.test_case "varint" `Quick test_varint_roundtrip;
          Alcotest.test_case "bytes" `Quick test_bytes_roundtrip;
          Alcotest.test_case "negative varint" `Quick test_varint_negative_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_double_serialize;
        ] );
    ]
