(* Fault-injection tests: the object-file reader's totality contract.

   Every mutation of a serialized database — truncation at any byte,
   single-byte flips, section-table reordering — must either load and
   analyze to the identical solution or be rejected with a structured
   [Binio.Corrupt] / [Diag.Fail].  Anything else (Invalid_argument,
   out-of-bounds, unchecked allocation, a silently different solution)
   is a reader bug. *)

open Cla_core
open Cla_workload

(* A small program covering every primitive kind plus an indirect call,
   so every section of the object file is populated. *)
let source =
  "int x, y, *p, *q, **pp, **qq;\n\
   int f(int a) { return a; }\n\
   int (*fp)(int);\n\
   void g(void) {\n\
  \  p = &x;\n\
  \  q = p;\n\
  \  pp = &p;\n\
  \  qq = &q;\n\
  \  *pp = q;\n\
  \  y = *p;\n\
  \  *pp = *qq;\n\
  \  fp = f;\n\
  \  y = fp(x);\n\
   }\n"

let small_db () =
  Objfile.write (Compilep.compile_string ~file:"t.c" source)

let solve_bytes data =
  (Andersen.solve ~demand:false (Objfile.view_of_string data))
    .Andersen.solution

let check_invariant ~baseline data m =
  match Faults.check data m with
  | Faults.Rejected _ -> ()
  | Faults.Accepted sol ->
      if not (Solution.equal baseline sol) then
        Alcotest.failf "%s accepted with a different solution"
          (Faults.describe m)

(* --- truncation totality: every prefix of the file ------------------- *)

let test_truncate_every_offset () =
  let data = small_db () in
  let baseline = solve_bytes data in
  for n = 0 to String.length data - 1 do
    check_invariant ~baseline data (Faults.Truncate n)
  done

(* --- single-byte flips at sampled offsets ---------------------------- *)

let test_flip_sampled () =
  let data = small_db () in
  let baseline = solve_bytes data in
  let rng = Rng.create 0xF11FL in
  for _ = 1 to 256 do
    let off = Rng.int rng (String.length data) in
    let mask = 1 + Rng.int rng 255 in
    check_invariant ~baseline data (Faults.Byte_flip (off, mask))
  done

(* Every byte of the header region (magic + section table + table crc)
   matters most — flip each of them exhaustively with one mask. *)
let test_flip_header_exhaustive () =
  let data = small_db () in
  let baseline = solve_bytes data in
  let header_end = 8 + (10 * 13) + 4 in
  for off = 0 to min (header_end - 1) (String.length data - 1) do
    check_invariant ~baseline data (Faults.Byte_flip (off, 0x40))
  done

(* --- seeded sweep over all mutation kinds ---------------------------- *)

let test_sweep_small () =
  let data = small_db () in
  let baseline = solve_bytes data in
  let s = Faults.sweep ~baseline ~seed:42L ~n:500 data in
  Alcotest.(check int) "all mutations checked" 500 s.Faults.n_total;
  Alcotest.(check int)
    "accounting adds up" 500
    (s.Faults.n_accepted + s.Faults.n_rejected);
  Alcotest.(check bool) "some mutants rejected" true (s.Faults.n_rejected > 0)

let test_sweep_generated () =
  (* a linked multi-unit database from the synthetic generator *)
  let files = Genc.generate ~seed:11L (Profile.scaled 0.05 Profile.nethack) in
  let view = Pipeline.compile_link files in
  let data = Objfile.write (fst (Linkp.link_views [ view ])) in
  let baseline = solve_bytes data in
  let s = Faults.sweep ~baseline ~seed:1337L ~n:200 data in
  Alcotest.(check int) "all mutations checked" 200 s.Faults.n_total

(* --- table swaps must be order-independent, not rejected ------------- *)

let test_table_swap_accepted () =
  let data = small_db () in
  let baseline = solve_bytes data in
  let accepted = ref 0 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      match Faults.check data (Faults.Table_swap (i, j)) with
      | Faults.Accepted sol ->
          incr accepted;
          Alcotest.(check bool)
            (Fmt.str "swap %d %d: identical solution" i j)
            true
            (Solution.equal baseline sol)
      | Faults.Rejected msg ->
          Alcotest.failf "reader rejected reordered table (%d,%d): %s" i j msg
    done
  done;
  Alcotest.(check int) "all swaps accepted" 100 !accepted

(* --- CLA1 compatibility ---------------------------------------------- *)

let test_cla1_loads_same_solution () =
  let db = Compilep.compile_string ~file:"t.c" source in
  let v2 = Objfile.write db in
  let v1 = Objfile.write ~version:1 db in
  Alcotest.(check bool) "formats differ on disk" false (String.equal v1 v2);
  let view1 = Objfile.view_of_string v1 in
  Alcotest.(check int) "reader reports version 1" 1 view1.Objfile.rversion;
  let view2 = Objfile.view_of_string v2 in
  Alcotest.(check int) "reader reports version 2" 2 view2.Objfile.rversion;
  Alcotest.(check bool) "identical solutions" true
    (Solution.equal (solve_bytes v1) (solve_bytes v2))

(* --- corrupt files surface as structured diagnostics ------------------ *)

let test_load_result_diag () =
  let path = Filename.temp_file "cla_faults" ".cla" in
  let oc = open_out_bin path in
  output_string oc "definitely not a CLA database";
  close_out oc;
  (match Objfile.load_result path with
  | Ok _ -> Alcotest.fail "garbage loaded"
  | Error d ->
      Alcotest.(check bool) "diag names the file" true (d.Diag.file = Some path);
      Alcotest.(check bool) "load phase" true (d.Diag.phase = Diag.Load));
  Sys.remove path;
  match Objfile.load_result path with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error d ->
      Alcotest.(check bool) "missing file is a Load diag" true
        (d.Diag.phase = Diag.Load)

(* --- bounded-memory loading ------------------------------------------ *)

let test_budget_identical_solution () =
  let files = Genc.generate ~seed:3L (Profile.scaled 0.2 Profile.burlap) in
  let view = Pipeline.compile_link files in
  let unbounded = Andersen.solve view in
  let stats0 = unbounded.Andersen.loader_stats in
  Alcotest.(check int) "unbounded run never evicts" 0 stats0.Loader.s_evictions;
  let budget = max 8 (stats0.Loader.s_in_core / 4) in
  let bounded = Andersen.solve ~budget view in
  let stats = bounded.Andersen.loader_stats in
  Alcotest.(check bool)
    (Fmt.str "evictions happened (budget %d, unbounded in-core %d)" budget
       stats0.Loader.s_in_core)
    true (stats.Loader.s_evictions > 0);
  Alcotest.(check bool)
    (Fmt.str "in-core %d within budget %d" stats.Loader.s_in_core budget)
    true
    (stats.Loader.s_in_core <= budget);
  Alcotest.(check bool) "identical solution" true
    (Solution.equal unbounded.Andersen.solution bounded.Andersen.solution);
  Alcotest.(check bool) "bounded run re-loads" true
    (stats.Loader.s_reloads >= stats0.Loader.s_reloads)

let test_budget_bounded_throughout () =
  let files = Genc.generate ~seed:3L (Profile.scaled 0.2 Profile.burlap) in
  let view = Pipeline.compile_link files in
  let ref_in_core =
    (Andersen.solve view).Andersen.loader_stats.Loader.s_in_core
  in
  let budget = max 8 (ref_in_core / 4) in
  let st = Andersen.init ~budget view in
  let check_bound what =
    let c = (Loader.stats st.Andersen.loader).Loader.s_in_core in
    Alcotest.(check bool)
      (Fmt.str "%s: in-core %d <= budget %d" what c budget)
      true (c <= budget)
  in
  check_bound "after init";
  let passes = ref 0 in
  while Andersen.pass st do
    incr passes;
    check_bound (Fmt.str "after pass %d" !passes)
  done;
  check_bound "at fixpoint";
  Alcotest.(check bool) "budget forced evictions" true
    ((Loader.stats st.Andersen.loader).Loader.s_evictions > 0)

(* --- retained set survives eviction (dependence-analysis input) ------ *)

let test_budget_retained_complete () =
  let files = Genc.generate ~seed:3L (Profile.scaled 0.2 Profile.burlap) in
  let view = Pipeline.compile_link files in
  let unbounded = Andersen.solve view in
  let budget =
    max 8 (unbounded.Andersen.loader_stats.Loader.s_in_core / 4)
  in
  let bounded = Andersen.solve ~budget view in
  let key (p : Objfile.prim_rec) = (p.Objfile.pkind, p.Objfile.pdst, p.Objfile.psrc) in
  let sorted r = List.sort compare (List.map key r.Andersen.retained) in
  Alcotest.(check bool) "same retained complex assignments" true
    (sorted unbounded = sorted bounded)

let () =
  Alcotest.run "faults"
    [
      ( "totality",
        [
          Alcotest.test_case "truncate every offset" `Quick
            test_truncate_every_offset;
          Alcotest.test_case "256 sampled flips" `Quick test_flip_sampled;
          Alcotest.test_case "exhaustive header flips" `Quick
            test_flip_header_exhaustive;
          Alcotest.test_case "seeded sweep x500" `Quick test_sweep_small;
          Alcotest.test_case "sweep on generated workload" `Quick
            test_sweep_generated;
          Alcotest.test_case "table swaps accepted" `Quick
            test_table_swap_accepted;
        ] );
      ( "compat",
        [
          Alcotest.test_case "CLA1 loads, same solution" `Quick
            test_cla1_loads_same_solution;
          Alcotest.test_case "load_result diagnostics" `Quick
            test_load_result_diag;
        ] );
      ( "budget",
        [
          Alcotest.test_case "identical solution under budget" `Quick
            test_budget_identical_solution;
          Alcotest.test_case "in-core bounded throughout" `Quick
            test_budget_bounded_throughout;
          Alcotest.test_case "retained set complete" `Quick
            test_budget_retained_complete;
        ] );
    ]
