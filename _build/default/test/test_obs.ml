(* Tests for the observability layer (Cla_obs): span nesting and
   ordering, metrics-registry name uniqueness, JSON export round-trips,
   Pretrans stats invariants, and an end-to-end pipeline smoke test of
   the --stats-json export content. *)

open Cla_core
module Obs = Cla_obs.Obs
module Span = Cla_obs.Span
module Metrics = Cla_obs.Metrics
module Json = Cla_obs.Json
module Export = Cla_obs.Export
module Trace = Cla_obs.Trace

(* Every test drives the process-wide recorder; start from a clean
   slate and leave recording off. *)
let fresh () =
  Obs.disable ();
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  fresh ();
  Obs.enable ();
  Obs.with_span "outer" (fun () ->
      Obs.with_span "first" (fun () -> ignore (Sys.opaque_identity 1));
      Obs.with_span "second" ~label:"x" (fun () ->
          Obs.with_span "inner" (fun () -> ())));
  Obs.disable ();
  match Span.roots () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" outer.Span.name;
      Alcotest.(check (list string))
        "children in execution order" [ "first"; "second" ]
        (List.map (fun s -> s.Span.name) outer.Span.children);
      let second = List.nth outer.Span.children 1 in
      Alcotest.(check (option string)) "label" (Some "x") second.Span.label;
      Alcotest.(check (list string))
        "grandchild" [ "inner" ]
        (List.map (fun s -> s.Span.name) second.Span.children);
      Alcotest.(check bool) "wall time non-negative" true
        (outer.Span.wall_s >= 0.);
      Alcotest.(check bool) "outer at least as long as children" true
        (outer.Span.wall_s
        >= List.fold_left
             (fun a c -> a +. c.Span.wall_s)
             0. outer.Span.children
           -. 1e-6)
  | spans ->
      Alcotest.fail (Fmt.str "expected one root span, got %d" (List.length spans))

let test_span_sibling_order () =
  fresh ();
  Obs.enable ();
  List.iter (fun n -> Obs.with_span n (fun () -> ())) [ "a"; "b"; "c" ];
  Obs.disable ();
  Alcotest.(check (list string))
    "roots in execution order" [ "a"; "b"; "c" ]
    (List.map (fun s -> s.Span.name) (Span.roots ()))

let test_span_disabled_is_noop () =
  fresh ();
  let v = Obs.with_span "ghost" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Span.roots ()))

let test_span_survives_exception () =
  fresh ();
  Obs.enable ();
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.with_span "after" (fun () -> ());
  Obs.disable ();
  Alcotest.(check (list string))
    "span closed on exception, recorder still consistent" [ "boom"; "after" ]
    (List.map (fun s -> s.Span.name) (Span.roots ()))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let reg = Metrics.create () in
  Metrics.set ~reg "a.count" 3;
  Metrics.incr ~reg "a.count";
  Metrics.incr ~reg ~by:2 "a.count";
  Metrics.setf ~reg "a.seconds" 1.5;
  Metrics.set_str ~reg "a.name" "gimp";
  Metrics.observe ~reg "a.series" 1;
  Metrics.observe ~reg "a.series" 2;
  Alcotest.(check (option int)) "incr" (Some 6) (Metrics.get_int ~reg "a.count");
  Alcotest.(check (option (list int)))
    "series order" (Some [ 1; 2 ])
    (Metrics.get_series ~reg "a.series");
  Alcotest.(check (list string))
    "snapshot sorted by name"
    [ "a.count"; "a.name"; "a.seconds"; "a.series" ]
    (List.map fst (Metrics.snapshot ~reg ()))

let test_metrics_name_uniqueness () =
  let reg = Metrics.create () in
  Metrics.set ~reg "x" 1;
  Alcotest.check_raises "rebind int as series"
    (Invalid_argument "Metrics: \"x\" is a int metric, cannot rebind as series")
    (fun () -> Metrics.set_series ~reg "x" [ 1 ]);
  Alcotest.check_raises "observe an int metric"
    (Invalid_argument "Metrics: \"x\" is a int metric, cannot observe")
    (fun () -> Metrics.observe ~reg "x" 1);
  Metrics.setf ~reg "y" 1.0;
  Alcotest.check_raises "incr a float metric"
    (Invalid_argument "Metrics: \"y\" is a float metric, cannot incr")
    (fun () -> Metrics.incr ~reg "y");
  (* same-kind republish overwrites *)
  Metrics.set ~reg "x" 9;
  Alcotest.(check (option int)) "overwrite" (Some 9) (Metrics.get_int ~reg "x")

(* ------------------------------------------------------------------ *)
(* JSON round-trips                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("f", Json.Float 0.125);
        ("s", Json.Str "quote \" backslash \\ newline \n done");
        ("arr", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Arr [] ]);
        ("obj", Json.Obj [ ("k", Json.Obj []) ]);
      ]
  in
  List.iter
    (fun indent ->
      let s = Json.to_string ~indent doc in
      Alcotest.(check bool)
        (Fmt.str "round-trip (indent=%b)" indent)
        true
        (Json.equal doc (Json.of_string s)))
    [ true; false ]

let test_json_number_kinds () =
  (match Json.of_string "[1, 1.0, 2e3]" with
  | Json.Arr [ Json.Int 1; Json.Float 1.0; Json.Float 2000.0 ] -> ()
  | _ -> Alcotest.fail "number parsing kinds");
  (* floats always re-parse as floats *)
  match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Json.Float 3.0 -> ()
  | _ -> Alcotest.fail "integral float must stay a float"

let test_export_roundtrip () =
  fresh ();
  Obs.enable ();
  Obs.with_span "phase" (fun () -> Obs.with_span "sub" (fun () -> ()));
  Obs.disable ();
  Metrics.set "m.count" 7;
  Metrics.set_series "m.series" [ 3; 2; 1 ];
  let parsed = Json.of_string (Json.to_string (Export.to_json ())) in
  let metrics = Option.get (Json.member "metrics" parsed) in
  Alcotest.(check (option int))
    "metric value" (Some 7)
    (Option.bind (Json.member "m.count" metrics) Json.to_int);
  (match Json.member "m.series" metrics with
  | Some (Json.Arr [ Json.Int 3; Json.Int 2; Json.Int 1 ]) -> ()
  | _ -> Alcotest.fail "series exported in order");
  (match Json.member "spans" parsed with
  | Some (Json.Arr [ span ]) -> (
      Alcotest.(check bool)
        "span name" true
        (Json.member "name" span = Some (Json.Str "phase"));
      match Json.member "children" span with
      | Some (Json.Arr [ child ]) ->
          Alcotest.(check bool)
            "child name" true
            (Json.member "name" child = Some (Json.Str "sub"))
      | _ -> Alcotest.fail "child span missing")
  | _ -> Alcotest.fail "spans missing");
  (* the Chrome trace export parses too, one event per span *)
  match Json.member "traceEvents" (Json.of_string (Json.to_string (Trace.to_json (Span.roots ())))) with
  | Some (Json.Arr events) ->
      Alcotest.(check int) "trace events" 2 (List.length events)
  | _ -> Alcotest.fail "traceEvents missing"

(* ------------------------------------------------------------------ *)
(* Pretrans stats invariants                                           *)
(* ------------------------------------------------------------------ *)

let solved_workload () =
  fresh ();
  let view =
    Pipeline.compile_link
      [
        ( "w.c",
          {|
int o1, o2, o3;
int *p, *q, *r, **pp;
void f(void) {
  p = &o1; q = &o2; r = &o3;
  pp = &p; *pp = q; p = *pp;
  q = p; r = q; p = r;  /* a cycle */
}
|}
        );
      ]
  in
  Andersen.solve view

let test_pretrans_invariants () =
  let r = solved_workload () in
  let s = r.Andersen.graph_stats in
  Alcotest.(check bool) "cache_hits <= queries" true
    (s.Pretrans.cache_hits <= s.Pretrans.queries);
  Alcotest.(check bool) "unified <= nodes" true
    (s.Pretrans.unified <= s.Pretrans.nodes);
  Alcotest.(check bool) "visits >= queries - cache_hits" true
    (s.Pretrans.visits >= s.Pretrans.queries - s.Pretrans.cache_hits);
  Alcotest.(check bool) "did some work" true (s.Pretrans.queries > 0)

let test_pretrans_reset_stats () =
  let g = Pretrans.create ~nodes:4 () in
  ignore (Pretrans.add_edge g 0 1);
  ignore (Pretrans.add_edge g 1 2);
  Pretrans.add_base g 2 3;
  ignore (Pretrans.get_lvals g 0);
  ignore (Pretrans.get_lvals g 0);
  let before = Pretrans.stats g in
  Alcotest.(check bool) "queries counted" true (before.Pretrans.queries = 2);
  Alcotest.(check bool) "second query hit the cache" true
    (before.Pretrans.cache_hits = 1);
  Pretrans.reset_stats g;
  let after = Pretrans.stats g in
  Alcotest.(check int) "queries reset" 0 after.Pretrans.queries;
  Alcotest.(check int) "visits reset" 0 after.Pretrans.visits;
  Alcotest.(check int) "cache_hits reset" 0 after.Pretrans.cache_hits;
  Alcotest.(check int) "structure kept: nodes" before.Pretrans.nodes
    after.Pretrans.nodes;
  Alcotest.(check int) "structure kept: edges" before.Pretrans.edges
    after.Pretrans.edges

(* ------------------------------------------------------------------ *)
(* Solution.points_to guard                                            *)
(* ------------------------------------------------------------------ *)

let test_points_to_guards () =
  let r = solved_workload () in
  let sol = r.Andersen.solution in
  Alcotest.check_raises "negative id fails loudly"
    (Invalid_argument "Solution.points_to: negative variable id -1")
    (fun () -> ignore (Solution.points_to sol (-1)));
  Alcotest.(check int) "beyond-table id is empty" 0
    (Lvalset.cardinal (Solution.points_to sol 1_000_000))

(* ------------------------------------------------------------------ *)
(* Pipeline smoke: the --stats-json content contract                   *)
(* ------------------------------------------------------------------ *)

let test_pipeline_stats_export () =
  fresh ();
  Obs.enable ();
  let view =
    Pipeline.compile_link
      [
        ("a.c", "int x, *y; int **z;\nvoid main(void) { z = &y; *z = &x; }");
        ("b.c", "extern int *y;\nint *alias;\nvoid g(void) { alias = y; }");
      ]
  in
  let r = Pipeline.points_to_result view in
  Obs.disable ();
  let parsed = Json.of_string (Json.to_string (Export.to_json ())) in
  let metrics = Option.get (Json.member "metrics" parsed) in
  let metric name = Option.bind (Json.member name metrics) Json.to_int in
  (match metric "analyze.passes" with
  | Some n -> Alcotest.(check bool) "analyze.passes >= 1" true (n >= 1)
  | None -> Alcotest.fail "analyze.passes missing");
  (* the registry mirrors the result's own stats records *)
  let gs = r.Andersen.graph_stats in
  Alcotest.(check (option int))
    "analyze.pretrans.queries matches Pretrans.stats"
    (Some gs.Pretrans.queries)
    (metric "analyze.pretrans.queries");
  Alcotest.(check (option int))
    "analyze.pretrans.cache_hits matches"
    (Some gs.Pretrans.cache_hits)
    (metric "analyze.pretrans.cache_hits");
  let ls = r.Andersen.loader_stats in
  Alcotest.(check (option int))
    "load.blocks.in_core matches Loader.stats"
    (Some ls.Loader.s_in_core)
    (metric "load.blocks.in_core");
  (* per-pass convergence series, one entry per pass *)
  (match Json.member "analyze.pass.edges_added" metrics with
  | Some (Json.Arr entries) ->
      Alcotest.(check int) "one series entry per pass" r.Andersen.passes
        (List.length entries)
  | _ -> Alcotest.fail "analyze.pass.edges_added missing");
  (* per-phase spans: compile and link recorded, analyze with children *)
  let span_names =
    List.map (fun s -> s.Span.name) (Span.roots ())
  in
  Alcotest.(check bool) "compile spans" true (List.mem "compile" span_names);
  Alcotest.(check bool) "link span" true (List.mem "link" span_names);
  match Span.find "analyze" (Span.roots ()) with
  | Some a ->
      Alcotest.(check bool) "analyze has pass children" true
        (List.exists (fun c -> c.Span.name = "analyze.pass") a.Span.children)
  | None -> Alcotest.fail "analyze span missing"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "sibling order" `Quick test_span_sibling_order;
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_is_noop;
          Alcotest.test_case "exception safety" `Quick test_span_survives_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "name uniqueness" `Quick test_metrics_name_uniqueness;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "number kinds" `Quick test_json_number_kinds;
          Alcotest.test_case "export round-trip" `Quick test_export_roundtrip;
        ] );
      ( "pretrans stats",
        [
          Alcotest.test_case "invariants" `Quick test_pretrans_invariants;
          Alcotest.test_case "reset_stats" `Quick test_pretrans_reset_stats;
        ] );
      ( "solution",
        [ Alcotest.test_case "points_to guards" `Quick test_points_to_guards ] );
      ( "pipeline",
        [
          Alcotest.test_case "stats export content" `Quick
            test_pipeline_stats_export;
        ] );
    ]
