(* Tests for the link phase: extern merging, intern separation, index
   recomputation, statistics. *)

open Cla_core

let compile src file =
  Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file src))

let link views = fst (Linkp.link_views views)

let test_extern_merged () =
  let a = compile "int shared; void f(void) { shared = 1; }" "a.c" in
  let b = compile "extern int shared; int use(void) { return shared; }" "b.c" in
  let db, stats = Linkp.link_views [ a; b ] in
  (* exactly one object named "shared" in the output *)
  let count =
    Array.fold_left
      (fun n (v : Objfile.varinfo) ->
        if v.Objfile.vname = "shared" then n + 1 else n)
      0 db.Objfile.vars
  in
  Alcotest.(check int) "one shared" 1 count;
  Alcotest.(check bool) "merges counted" true (stats.Linkp.n_extern_merged > 0)

let test_statics_not_merged () =
  let a = compile "static int priv; void f(void) { priv = 1; }" "a.c" in
  let b = compile "static int priv; void g(void) { priv = 2; }" "b.c" in
  let db = link [ a; b ] in
  let count =
    Array.fold_left
      (fun n (v : Objfile.varinfo) ->
        if v.Objfile.vname = "priv" then n + 1 else n)
      0 db.Objfile.vars
  in
  Alcotest.(check int) "two private statics" 2 count

let test_fields_merged_across_units () =
  let hdr = "struct S { int *x; };\n" in
  let a = compile (hdr ^ "int z; struct S s; void f(void) { s.x = &z; }") "a.c" in
  let b = compile (hdr ^ "struct S t; int *use(void) { return t.x; }") "b.c" in
  let db = link [ a; b ] in
  let count =
    Array.fold_left
      (fun n (v : Objfile.varinfo) ->
        if v.Objfile.vname = "S.x" then n + 1 else n)
      0 db.Objfile.vars
  in
  Alcotest.(check int) "one field object" 1 count

let test_function_args_merged () =
  let a = compile "int f(int a) { return a; }" "a.c" in
  let b = compile "extern int f(); int r; void g(void) { r = f(3); }" "b.c" in
  let db = link [ a; b ] in
  let count name =
    Array.fold_left
      (fun n (v : Objfile.varinfo) ->
        if v.Objfile.vname = name then n + 1 else n)
      0 db.Objfile.vars
  in
  Alcotest.(check int) "one f@1" 1 (count "f@1");
  Alcotest.(check int) "one f@ret" 1 (count "f@ret")

let test_cross_file_flow () =
  (* the linked program must expose the flow set up in another unit *)
  let a = compile "int *gp; int ga; void seta(void) { gp = &ga; }" "a.c" in
  let b = compile "extern int *gp; int *r; void use(void) { r = gp; }" "b.c" in
  let db = link [ a; b ] in
  let view = Objfile.view_of_string (Objfile.write db) in
  let sol = Pipeline.points_to view in
  match Solution.find sol "r" with
  | Some r ->
      let pts =
        List.map (Solution.var_name sol) (Lvalset.to_list (Solution.points_to sol r))
      in
      Alcotest.(check (list string)) "r -> {ga}" [ "ga" ] pts
  | None -> Alcotest.fail "r not found"

let test_meta_summed () =
  let a = compile "int x, y; void f(void) { x = y; }" "a.c" in
  let b = compile "int u, v; void g(void) { u = v; v = u; }" "b.c" in
  let db = link [ a; b ] in
  Alcotest.(check int) "copy counts summed" 3
    db.Objfile.meta.Objfile.mcounts.Cla_ir.Prim.n_copy;
  Alcotest.(check int) "two files" 2 (List.length db.Objfile.meta.Objfile.mfiles)

let test_blocks_merged_by_source () =
  (* both units copy *from* the same global: the linked dynamic block of
     that global must contain both assignments *)
  let a = compile "int g, x; void f(void) { x = g; }" "a.c" in
  let b = compile "extern int g; int y; void h(void) { y = g; }" "b.c" in
  let db = link [ a; b ] in
  let view = Objfile.view_of_string (Objfile.write db) in
  let gid =
    match Objfile.find_targets view "g" with
    | [ v ] -> v
    | l -> (
        (* several objects may be named g across kinds; pick the global *)
        match
          List.find_opt
            (fun v -> view.Objfile.rvars.(v).Objfile.vkind = Cla_ir.Var.Global)
            l
        with
        | Some v -> v
        | None -> Alcotest.fail "no global g")
  in
  Alcotest.(check int) "two consumers in g's block" 2
    (List.length (Objfile.read_block view gid))

let test_idempotent_relink () =
  (* linking a linked database with nothing else is an identity on counts *)
  let a = compile "int x, *p; void f(void) { p = &x; }" "a.c" in
  let db1 = link [ a ] in
  let v1 = Objfile.view_of_string (Objfile.write db1) in
  let db2 = link [ v1 ] in
  Alcotest.(check int) "vars stable" (Array.length db1.Objfile.vars)
    (Array.length db2.Objfile.vars);
  Alcotest.(check int) "statics stable"
    (List.length db1.Objfile.statics)
    (List.length db2.Objfile.statics)

let test_link_files_on_disk () =
  let dir = Filename.temp_file "cla_link" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let w name src =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc src;
    close_out oc;
    path
  in
  let c1 = w "a.c" "int shared; void f(void) { shared = 1; }" in
  let c2 = w "b.c" "extern int shared; int g(void) { return shared; }" in
  let o1 = Filename.concat dir "a.clo" in
  let o2 = Filename.concat dir "b.clo" in
  Compilep.compile_to ~output:o1 c1;
  Compilep.compile_to ~output:o2 c2;
  let out = Filename.concat dir "prog.cla" in
  let stats = Linkp.link_files ~output:out [ o1; o2 ] in
  Alcotest.(check int) "two units" 2 stats.Linkp.n_units;
  let v = Objfile.load out in
  Alcotest.(check bool) "loadable" true (Objfile.n_vars v > 0);
  List.iter Sys.remove [ c1; c2; o1; o2; out ];
  Sys.rmdir dir

let test_many_units () =
  (* twenty units all writing the same global pointer; the linked program
     must see the union of every unit's address-of assignments *)
  let units =
    List.init 20 (fun i ->
        compile
          (Fmt.str
             "extern int *shared;\nint obj%d;\nvoid set%d(void) { shared = &obj%d; }"
             i i i)
          (Fmt.str "u%d.c" i))
  in
  let def = compile "int *shared;" "def.c" in
  let db, stats = Linkp.link_views (def :: units) in
  Alcotest.(check int) "21 units" 21 stats.Linkp.n_units;
  let view = Objfile.view_of_string (Objfile.write db) in
  let sol = Pipeline.points_to view in
  match Solution.find sol "shared" with
  | Some v ->
      Alcotest.(check int) "20 targets" 20
        (Lvalset.cardinal (Solution.points_to sol v))
  | None -> Alcotest.fail "no shared"

let test_link_order_irrelevant () =
  let a = compile "int *g; int x; void f(void) { g = &x; }" "a.c" in
  let b = compile "extern int *g; int *r; void h(void) { r = g; }" "b.c" in
  let s1 = Pipeline.points_to (Objfile.view_of_string (Objfile.write (link [ a; b ]))) in
  let s2 = Pipeline.points_to (Objfile.view_of_string (Objfile.write (link [ b; a ]))) in
  let pts sol name =
    match Solution.find sol name with
    | Some v ->
        List.sort compare
          (List.map (Solution.var_name sol) (Lvalset.to_list (Solution.points_to sol v)))
    | None -> []
  in
  Alcotest.(check (list string)) "same result either order" (pts s1 "r") (pts s2 "r")

let () =
  Alcotest.run "link"
    [
      ( "symbols",
        [
          Alcotest.test_case "externs merged" `Quick test_extern_merged;
          Alcotest.test_case "statics kept apart" `Quick test_statics_not_merged;
          Alcotest.test_case "fields merged" `Quick test_fields_merged_across_units;
          Alcotest.test_case "function args merged" `Quick test_function_args_merged;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "cross-file flow" `Quick test_cross_file_flow;
          Alcotest.test_case "meta summed" `Quick test_meta_summed;
          Alcotest.test_case "blocks merged by source" `Quick test_blocks_merged_by_source;
          Alcotest.test_case "relink idempotent" `Quick test_idempotent_relink;
          Alcotest.test_case "on-disk pipeline" `Quick test_link_files_on_disk;
          Alcotest.test_case "twenty units" `Quick test_many_units;
          Alcotest.test_case "order irrelevant" `Quick test_link_order_irrelevant;
        ] );
    ]
