(* Tests for the database-to-database transformers (Section 4's
   "pre-analysis optimizers"): offline variable substitution and
   context-sensitivity by controlled duplication. *)

open Cla_core

let view_of src =
  Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file:"t.c" src))

let db_of src =
  fst (Linkp.link_views [ view_of src ])

let pts_of sol name =
  match Solution.find sol name with
  | Some v ->
      List.map (Solution.var_name sol) (Lvalset.to_list (Solution.points_to sol v))
      |> List.sort compare
  | None -> Alcotest.fail ("no variable " ^ name)

(* ------------------------------------------------------------------ *)
(* Offline variable substitution                                       *)
(* ------------------------------------------------------------------ *)

let test_subst_merges_chain () =
  (* b and c have exactly one inflow each: they are equivalent to a *)
  let db = db_of "int x, *a, *b, *c;\nvoid f(void) { a = &x; b = a; c = b; }" in
  let db', stats = Transform.substitute_variables db in
  Alcotest.(check bool) "merged at least b and c" true (stats.Transform.merged_vars >= 2);
  Alcotest.(check bool) "dropped the copies" true
    (stats.Transform.dropped_assignments >= 2);
  let sol = Pipeline.points_to (Objfile.view_of_string (Objfile.write db')) in
  (* a survives (it has the base inflow) and still points to x *)
  Alcotest.(check (list string)) "a -> {x}" [ "x" ] (pts_of sol "a")

let test_subst_preserves_solution () =
  let db =
    db_of
      "int x, y, *a, *b, *c, *d, **pp;\n\
       void f(void) { a = &x; b = a; c = b; d = c; pp = &a; *pp = &y; }"
  in
  let v = Objfile.view_of_string (Objfile.write db) in
  let before = Pipeline.points_to v in
  let db', stats = Transform.substitute_variables db in
  let v' = Objfile.view_of_string (Objfile.write db') in
  let after = Pipeline.points_to v' in
  (* every surviving variable keeps its exact points-to set (modulo the
     renumbering of the locations, which substitution never merges:
     address-taken variables are kept) *)
  Array.iteri
    (fun old_id _ ->
      let new_id = stats.Transform.mapping.(old_id) in
      let name_old = Solution.var_name before old_id in
      let before_set =
        List.sort compare
          (List.map (Solution.var_name before)
             (Lvalset.to_list (Solution.points_to before old_id)))
      in
      let after_set =
        List.sort compare
          (List.map (Solution.var_name after)
             (Lvalset.to_list (Solution.points_to after new_id)))
      in
      Alcotest.(check (list string)) ("pts of " ^ name_old) before_set after_set)
    v.Objfile.rvars

let test_subst_keeps_address_taken () =
  (* b is address-taken: a store could reach it, so it must survive *)
  let db =
    db_of
      "int x, *a, *b, **pb;\nvoid f(void) { a = &x; b = a; pb = &b; *pb = a; }"
  in
  let _, stats = Transform.substitute_variables db in
  Alcotest.(check int) "nothing merged" 0 stats.Transform.merged_vars

let test_subst_keeps_multi_inflow () =
  let db =
    db_of "int x, y, *a, *b, *c;\nvoid f(void) { a = &x; b = &y; c = a; c = b; }"
  in
  let _, stats = Transform.substitute_variables db in
  Alcotest.(check int) "join point kept" 0 stats.Transform.merged_vars

let qcheck_subst_sound =
  QCheck.Test.make ~count:100
    ~name:"substitution preserves the solution on surviving variables"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let db = Cla_workload.Genir.generate (Int64.of_int seed) in
      let v = Objfile.view_of_string (Objfile.write db) in
      let before = (Andersen.solve v).Andersen.solution in
      let db', stats = Transform.substitute_variables db in
      let v' = Objfile.view_of_string (Objfile.write db') in
      let after = (Andersen.solve v').Andersen.solution in
      let ok = ref true in
      (* locations survive substitution (address-taken vars are never
         merged), so sets can be compared through the mapping *)
      Array.iteri
        (fun old_id _ ->
          let new_id = stats.Transform.mapping.(old_id) in
          let b = Lvalset.to_list (Solution.points_to before old_id) in
          let a = Lvalset.to_list (Solution.points_to after new_id) in
          let b' = List.sort compare (List.map (fun z -> stats.Transform.mapping.(z)) b) in
          if b' <> List.sort compare a then ok := false)
        v.Objfile.rvars;
      !ok)

(* ------------------------------------------------------------------ *)
(* Context-sensitivity by duplication                                  *)
(* ------------------------------------------------------------------ *)

let id_src =
  "int x, y;\n\
   int *id(int *p) { return p; }\n\
   int *a, *b;\n\
   void main(void) {\n\
   a = id(&x);\n\
   b = id(&y);\n\
   }"

let test_insensitive_merges () =
  (* baseline: context-insensitive analysis joins the two calls *)
  let sol = Pipeline.points_to (view_of id_src) in
  Alcotest.(check (list string)) "a conflated" [ "x"; "y" ] (pts_of sol "a");
  Alcotest.(check (list string)) "b conflated" [ "x"; "y" ] (pts_of sol "b")

let test_duplication_separates () =
  let db = db_of id_src in
  let db', stats = Transform.duplicate_contexts db in
  Alcotest.(check int) "one function cloned" 1 stats.Transform.cloned_functions;
  Alcotest.(check int) "one clone" 1 stats.Transform.clones;
  let sol = Pipeline.points_to (Objfile.view_of_string (Objfile.write db')) in
  Alcotest.(check (list string)) "a separated" [ "x" ] (pts_of sol "a");
  Alcotest.(check (list string)) "b separated" [ "y" ] (pts_of sol "b")

let test_duplication_sound () =
  (* duplication must not *lose* flows: the context-sensitive result is a
     subset of the insensitive one on every original variable *)
  let db = db_of id_src in
  let v = Objfile.view_of_string (Objfile.write db) in
  let before = Pipeline.points_to v in
  let db', _ = Transform.duplicate_contexts db in
  let v' = Objfile.view_of_string (Objfile.write db') in
  let after = Pipeline.points_to v' in
  for var = 0 to Objfile.n_vars v - 1 do
    Lvalset.iter
      (fun z ->
        Alcotest.(check bool)
          (Fmt.str "pts(%s) refines" (Solution.var_name before var))
          true
          (Lvalset.mem z (Solution.points_to before var)))
      (Solution.points_to after var)
  done

let test_recursive_not_cloned () =
  let src =
    "int *self(int *p, int n) { if (n) return self(p, n - 1); return p; }\n\
     int x, y, *a, *b;\n\
     void main(void) {\n\
     a = self(&x, 1);\n\
     b = self(&y, 2);\n\
     }"
  in
  let db = db_of src in
  let _, stats = Transform.duplicate_contexts db in
  Alcotest.(check int) "recursive function untouched" 0 stats.Transform.cloned_functions

let test_single_site_not_cloned () =
  let src =
    "int *id(int *p) { return p; }\n\
     int x, *a;\nvoid main(void) { a = id(&x); }"
  in
  let db = db_of src in
  let _, stats = Transform.duplicate_contexts db in
  Alcotest.(check int) "nothing to separate" 0 stats.Transform.clones

let test_duplication_with_locals () =
  (* the clone must include the function's locals, or flows through a
     local would still join *)
  let src =
    "int x, y;\n\
     int *via(int *p) { int *local; local = p; return local; }\n\
     int *a, *b;\n\
     void main(void) {\n\
     a = via(&x);\n\
     b = via(&y);\n\
     }"
  in
  let db = db_of src in
  let db', _ = Transform.duplicate_contexts db in
  let sol = Pipeline.points_to (Objfile.view_of_string (Objfile.write db')) in
  Alcotest.(check (list string)) "a via local" [ "x" ] (pts_of sol "a");
  Alcotest.(check (list string)) "b via local" [ "y" ] (pts_of sol "b")

let test_transforms_compose () =
  let db = db_of id_src in
  let db', _ = Transform.duplicate_contexts db in
  let db'', stats = Transform.substitute_variables db' in
  (* substitution may merge [a] itself away (its only inflow is a single
     copy after duplication); query its representative via the mapping *)
  let a_old =
    let found = ref (-1) in
    Array.iteri
      (fun i (vi : Objfile.varinfo) ->
        if vi.Objfile.vname = "a" then found := i)
      db'.Objfile.vars;
    !found
  in
  let sol = Pipeline.points_to (Objfile.view_of_string (Objfile.write db'')) in
  let a_new = stats.Transform.mapping.(a_old) in
  let pts =
    List.map (Solution.var_name sol)
      (Lvalset.to_list (Solution.points_to sol a_new))
  in
  Alcotest.(check (list string)) "composed still separated" [ "x" ] pts

let () =
  Alcotest.run "transform"
    [
      ( "substitution",
        [
          Alcotest.test_case "merges copy chains" `Quick test_subst_merges_chain;
          Alcotest.test_case "preserves solutions" `Quick test_subst_preserves_solution;
          Alcotest.test_case "keeps address-taken" `Quick test_subst_keeps_address_taken;
          Alcotest.test_case "keeps join points" `Quick test_subst_keeps_multi_inflow;
          QCheck_alcotest.to_alcotest qcheck_subst_sound;
        ] );
      ( "context duplication",
        [
          Alcotest.test_case "insensitive baseline" `Quick test_insensitive_merges;
          Alcotest.test_case "duplication separates" `Quick test_duplication_separates;
          Alcotest.test_case "refines, never loses" `Quick test_duplication_sound;
          Alcotest.test_case "recursion untouched" `Quick test_recursive_not_cloned;
          Alcotest.test_case "single site untouched" `Quick test_single_site_not_cloned;
          Alcotest.test_case "locals cloned too" `Quick test_duplication_with_locals;
          Alcotest.test_case "transforms compose" `Quick test_transforms_compose;
        ] );
    ]
