(* End-to-end tests of the `cla` command-line driver: compile, link,
   analyze, depend, transform, dump, gen — the tool a user actually runs. *)

let cla =
  (* dune declares the binary as a dep; it lands next to the test's cwd *)
  let candidates =
    [ "../bin/cla.exe"; "_build/default/bin/cla.exe"; "bin/cla.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/cla.exe"

let run_capture cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> 255 in
  (code, Buffer.contents buf)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let tmpdir = Filename.temp_file "cla_cli" ""

let () =
  Sys.remove tmpdir;
  Sys.mkdir tmpdir 0o755

let in_tmp name = Filename.concat tmpdir name

let write_file name content =
  let oc = open_out (in_tmp name) in
  output_string oc content;
  close_out oc

let () =
  write_file "a.c"
    "int x, *y;\nint **z;\nvoid main(void) { z = &y; *z = &x; }\n";
  write_file "b.c" "extern int *y;\nint *alias;\nvoid g(void) { alias = y; }\n";
  write_file "dep.c"
    "short counter;\nshort mirror;\nint wide;\n\
     void f(void) { counter = 40000; mirror = counter; wide = counter; }\n"

let check_run name cmd expects =
  Alcotest.test_case name `Quick (fun () ->
      let code, out = run_capture cmd in
      Alcotest.(check int) (name ^ ": exit code\n" ^ out) 0 code;
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Fmt.str "%s: output contains %S in:\n%s" name e out)
            true (contains ~affix:e out))
        expects)

let q = Filename.quote

let () =
  Alcotest.run "cli"
    [
      ( "pipeline",
        [
          check_run "compile"
            (Fmt.str "%s compile %s %s" cla (q (in_tmp "a.c")) (q (in_tmp "b.c")))
            [ "a.clo"; "b.clo" ];
          check_run "link"
            (Fmt.str "%s link %s %s -o %s" cla
               (q (in_tmp "a.clo"))
               (q (in_tmp "b.clo"))
               (q (in_tmp "prog.cla")))
            [ "2 unit(s)"; "merged" ];
          check_run "analyze"
            (Fmt.str "%s analyze %s --print" cla (q (in_tmp "prog.cla")))
            [ "y -> {x}"; "z -> {y}"; "alias -> {x}"; "pretransitive" ];
          check_run "analyze json"
            (Fmt.str "%s analyze %s --json" cla (q (in_tmp "prog.cla")))
            [ "\"y\": [\"x\"]"; "\"z\": [\"y\"]" ];
          check_run "analyze worklist"
            (Fmt.str "%s analyze %s --algo worklist" cla (q (in_tmp "prog.cla")))
            [ "worklist:" ];
          check_run "analyze ablation flags"
            (Fmt.str "%s analyze %s --no-cache --no-cycle-elim" cla
               (q (in_tmp "prog.cla")))
            [ "pretransitive:" ];
          check_run "dump"
            (Fmt.str "%s dump %s --blocks" cla (q (in_tmp "prog.cla")))
            [ "static section"; "z = &y"; "dynamic section" ];
        ] );
      ( "applications",
        [
          check_run "depend setup"
            (Fmt.str "%s compile %s -o %s && %s link %s -o %s" cla
               (q (in_tmp "dep.c"))
               (q (in_tmp "dep.clo"))
               cla
               (q (in_tmp "dep.clo"))
               (q (in_tmp "dep.cla")))
            [];
          check_run "depend"
            (Fmt.str "%s depend %s --target counter" cla (q (in_tmp "dep.cla")))
            [ "dependent object(s)"; "mirror/short" ];
          check_run "depend narrowing"
            (Fmt.str "%s depend %s --target counter --new-type int" cla
               (q (in_tmp "dep.cla")))
            [ "[WIDEN]"; "[ok"; "40000" ];
          check_run "transform"
            (Fmt.str "%s transform %s --substitute -o %s" cla
               (q (in_tmp "prog.cla"))
               (q (in_tmp "prog2.cla")))
            [ "substitute:" ];
          check_run "gen"
            (Fmt.str "%s gen nethack --scale 0.05 -d %s" cla (q tmpdir))
            [ "nethack_00.c" ];
        ] );
      ( "errors",
        [
          Alcotest.test_case "missing file" `Quick (fun () ->
              let code, _ = run_capture (Fmt.str "%s analyze /nonexistent.cla" cla) in
              Alcotest.(check bool) "nonzero exit" true (code <> 0));
          Alcotest.test_case "parse error reported" `Quick (fun () ->
              write_file "bad.c" "int x = ;\n";
              let code, out =
                run_capture (Fmt.str "%s compile %s" cla (q (in_tmp "bad.c")))
              in
              Alcotest.(check bool) "nonzero exit" true (code <> 0);
              Alcotest.(check bool) ("mentions parse error: " ^ out) true
                (contains ~affix:"parse error" out));
        ] );
    ]
