(* Tests for the synthetic workload generator: determinism, profile
   fidelity (Table 2 counts), parsability of the generated C. *)

open Cla_core
open Cla_workload

let small = Profile.scaled 0.05 Profile.nethack

let test_deterministic () =
  let a = Genc.generate ~seed:7L small in
  let b = Genc.generate ~seed:7L small in
  Alcotest.(check int) "same file count" (List.length a) (List.length b);
  List.iter2
    (fun (na, ca) (nb, cb) ->
      Alcotest.(check string) "name" na nb;
      Alcotest.(check string) ("content of " ^ na) ca cb)
    a b

let test_seed_changes_output () =
  let a = Genc.generate ~seed:7L small in
  let b = Genc.generate ~seed:8L small in
  Alcotest.(check bool) "different seeds differ" false
    (List.for_all2 (fun (_, x) (_, y) -> String.equal x y) a b)

let test_generated_code_compiles () =
  let files = Genc.generate small in
  let view = Pipeline.compile_link files in
  Alcotest.(check bool) "has variables" true (Objfile.n_vars view > 0)

let test_counts_near_profile () =
  let p = Profile.scaled 0.3 Profile.burlap in
  let files = Genc.generate p in
  let view = Pipeline.compile_link files in
  let c = view.Objfile.rmeta.Objfile.mcounts in
  let near what got want =
    let tol = max 10 (want / 5) in
    Alcotest.(check bool)
      (Fmt.str "%s: got %d, want %d (±%d)" what got want tol)
      true
      (abs (got - want) <= tol)
  in
  near "copies" c.Cla_ir.Prim.n_copy p.Profile.counts.Cla_ir.Prim.n_copy;
  near "addrs" c.Cla_ir.Prim.n_addr p.Profile.counts.Cla_ir.Prim.n_addr;
  (* stores/loads/deref2 are emitted exactly *)
  Alcotest.(check int) "stores" p.Profile.counts.Cla_ir.Prim.n_store
    c.Cla_ir.Prim.n_store;
  Alcotest.(check int) "loads" p.Profile.counts.Cla_ir.Prim.n_load
    c.Cla_ir.Prim.n_load;
  Alcotest.(check int) "deref2" p.Profile.counts.Cla_ir.Prim.n_deref2
    c.Cla_ir.Prim.n_deref2

let test_profiles_complete () =
  Alcotest.(check int) "eight profiles" 8 (List.length Profile.all);
  List.iter
    (fun (p : Profile.t) ->
      Alcotest.(check bool) (p.Profile.name ^ " variables > 0") true (p.Profile.variables > 0);
      Alcotest.(check bool) (p.Profile.name ^ " has table3") true
        (p.Profile.table3.Profile.t3_in_file > 0))
    Profile.all

let test_find_profile () =
  Alcotest.(check bool) "gimp found" true (Profile.find "gimp" <> None);
  Alcotest.(check bool) "unknown" true (Profile.find "quake" = None)

let test_scaled () =
  let s = Profile.scaled 0.5 Profile.gcc in
  Alcotest.(check bool) "half the copies" true
    (abs ((s.Profile.counts.Cla_ir.Prim.n_copy * 2) - Profile.gcc.Profile.counts.Cla_ir.Prim.n_copy)
     <= 2)

let test_multifile () =
  let p = Profile.scaled 0.5 Profile.burlap in
  let files = Genc.generate p in
  Alcotest.(check bool) "several files" true (List.length files >= 2)

(* ---------------- rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 99L in
  let b = Rng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_biased () =
  let r = Rng.create 2L in
  (* with a large exponent, picks concentrate near 0 *)
  let low = ref 0 in
  let n = 1000 in
  for _ = 1 to n do
    if Rng.biased r 100 8.0 < 10 then incr low
  done;
  Alcotest.(check bool)
    (Fmt.str "%d/%d in the low decile" !low n)
    true
    (!low > n / 2)

(* ---------------- genir ---------------- *)

let test_genir_counts () =
  let params =
    { Genir.default_params with Genir.n_copy = 11; n_store = 7; n_addr = 5 }
  in
  let v = Genir.view ~params 3L in
  let c = v.Objfile.rmeta.Objfile.mcounts in
  Alcotest.(check int) "copies" 11 c.Cla_ir.Prim.n_copy;
  Alcotest.(check int) "stores" 7 c.Cla_ir.Prim.n_store;
  Alcotest.(check int) "addrs" 5 (Array.length v.Objfile.rstatics)

let test_genir_solvable () =
  let v = Genir.view 4L in
  let r = Andersen.solve v in
  Alcotest.(check bool) "terminates with some relations" true
    (Solution.n_relations r.Andersen.solution >= 0)

let () =
  Alcotest.run "workload"
    [
      ( "genc",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_output;
          Alcotest.test_case "compiles" `Quick test_generated_code_compiles;
          Alcotest.test_case "counts near profile" `Quick test_counts_near_profile;
          Alcotest.test_case "multi-file" `Quick test_multifile;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "all present" `Quick test_profiles_complete;
          Alcotest.test_case "lookup" `Quick test_find_profile;
          Alcotest.test_case "scaling" `Quick test_scaled;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bias" `Quick test_rng_biased;
        ] );
      ( "genir",
        [
          Alcotest.test_case "counts" `Quick test_genir_counts;
          Alcotest.test_case "solvable" `Quick test_genir_solvable;
        ] );
    ]
