(* Property-based parser validation: generate random expression ASTs,
   pretty-print them, re-parse, and compare.  The printer fully
   parenthesizes, so the reparse must reproduce the tree exactly — any
   precedence or associativity bug in the parser shows up as a mismatch.

   A second property runs the normalizer on random statement lists to
   check it never crashes and respects the assignment-count bookkeeping. *)

open Cla_cfront
open Cast

(* ------------------------------------------------------------------ *)
(* Random expression ASTs                                              *)
(* ------------------------------------------------------------------ *)

let var_names = [| "a"; "b"; "c"; "p"; "q" |]

let binops =
  [| "+"; "-"; "*"; "/"; "%"; "<<"; ">>"; "<"; ">"; "<="; ">="; "=="; "!=";
     "&"; "^"; "|"; "&&"; "||" |]

let gen_expr : expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map (fun i -> mk_expr (Eident var_names.(i mod 5))) small_nat;
            map (fun i -> mk_expr (Eint (Int64.of_int i, string_of_int i))) small_nat;
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              map2
                (fun i (a, b) -> mk_expr (Ebinop (binops.(i mod Array.length binops), a, b)))
                small_nat
                (pair (self (n / 2)) (self (n / 2))) );
            (1, map (fun a -> mk_expr (Eunop ("!", a))) (self (n - 1)));
            (1, map (fun a -> mk_expr (Eunop ("~", a))) (self (n - 1)));
            (1, map (fun a -> mk_expr (Eunop ("u-", a))) (self (n - 1)));
            (1, map (fun a -> mk_expr (Ederef a)) (self (n - 1)));
            ( 1,
              map
                (fun (c, (a, b)) -> mk_expr (Econd (c, a, b)))
                (pair (self (n / 3)) (pair (self (n / 3)) (self (n / 3)))) );
            ( 1,
              map2
                (fun i args -> mk_expr (Ecall (mk_expr (Eident var_names.(i mod 5)), args)))
                small_nat
                (list_size (int_bound 3) (self (n / 3))) );
            (1, map (fun (a, b) -> mk_expr (Eindex (a, b))) (pair (self (n / 2)) (self (n / 2))));
          ]
        |> fun g -> g)

(* structural comparison ignoring locations *)
let rec expr_equal (a : expr) (b : expr) =
  match (a.edesc, b.edesc) with
  | Eident x, Eident y -> x = y
  | Eint (v, _), Eint (w, _) -> v = w
  | Ebinop (o1, a1, a2), Ebinop (o2, b1, b2) ->
      o1 = o2 && expr_equal a1 b1 && expr_equal a2 b2
  | Eunop (o1, a1), Eunop (o2, b1) -> o1 = o2 && expr_equal a1 b1
  | Ederef a1, Ederef b1 -> expr_equal a1 b1
  | Eaddrof a1, Eaddrof b1 -> expr_equal a1 b1
  | Econd (c1, a1, a2), Econd (c2, b1, b2) ->
      expr_equal c1 c2 && expr_equal a1 b1 && expr_equal a2 b2
  | Ecall (f1, l1), Ecall (f2, l2) ->
      expr_equal f1 f2
      && List.length l1 = List.length l2
      && List.for_all2 expr_equal l1 l2
  | Eindex (a1, a2), Eindex (b1, b2) -> expr_equal a1 b1 && expr_equal a2 b2
  | _ -> false

let parse_expr_back text =
  let src = Fmt.str "void f(void) { sink = %s; }" text in
  let r = Cparser.parse_string ~file:"rt.c" src in
  List.find_map
    (function
      | Tfundef f ->
          List.find_map
            (fun s ->
              match s.sdesc with
              | Sexpr { edesc = Eassign (None, _, e); _ } -> Some e
              | _ -> None)
            f.fbody
      | _ -> None)
    r.Cparser.tunit.tops

let roundtrip =
  QCheck.Test.make ~count:500 ~name:"print then reparse preserves the tree"
    (QCheck.make ~print:Cast.expr_to_string gen_expr)
    (fun e ->
      let text = Cast.expr_to_string e in
      match parse_expr_back text with
      | Some e' ->
          if expr_equal e e' then true
          else
            QCheck.Test.fail_reportf "mismatch:@.printed: %s@.reparsed: %s"
              text (Cast.expr_to_string e')
      | None -> QCheck.Test.fail_reportf "no expression reparsed from %s" text)

(* ------------------------------------------------------------------ *)
(* Normalizer robustness on random statements                          *)
(* ------------------------------------------------------------------ *)

let gen_stmt_text : string QCheck.Gen.t =
  let open QCheck.Gen in
  let v = oneofl [ "a"; "b"; "c" ] in
  let p = oneofl [ "p"; "q" ] in
  oneof
    [
      map2 (fun x y -> Fmt.str "%s = %s;" x y) v v;
      map2 (fun x y -> Fmt.str "%s = &%s;" x y) p v;
      map2 (fun x y -> Fmt.str "*%s = %s;" x y) p v;
      map2 (fun x y -> Fmt.str "%s = *%s;" x y) v p;
      map2 (fun x y -> Fmt.str "%s = %s + 1;" x y) v v;
      map2 (fun x y -> Fmt.str "if (%s) { %s = %s; }" x x y) v v;
      map2 (fun x y -> Fmt.str "while (%s) { %s = %s; break; }" x x y) v v;
    ]

let normalizer_total =
  QCheck.Test.make ~count:200 ~name:"normalizer never fails on generated statements"
    QCheck.(make Gen.(list_size (int_range 1 25) gen_stmt_text))
    (fun stmts ->
      let src =
        "int a, b, c; int *p, *q;\nvoid f(void) {\n"
        ^ String.concat "\n" stmts ^ "\n}"
      in
      let prog = Frontend.prog_of_string ~file:"gen.c" src in
      (* every statement lowers to at least zero and at most 3 primitives *)
      Cla_ir.Prog.n_assigns prog <= (3 * List.length stmts) + 3)

let counts_match_source =
  QCheck.Test.make ~count:200 ~name:"assignment counts track the source"
    QCheck.(make Gen.(list_size (int_range 1 25) gen_stmt_text))
    (fun stmts ->
      let src =
        "int a, b, c; int *p, *q;\nvoid f(void) {\n"
        ^ String.concat "\n" stmts ^ "\n}"
      in
      let prog = Frontend.prog_of_string ~file:"gen.c" src in
      let c = Cla_ir.Prog.counts prog in
      let count_of prefix =
        List.length (List.filter (fun s -> String.length s > 0 && String.sub s 0 1 = prefix) stmts)
      in
      (* the store statements are exactly those beginning with '*' *)
      c.Cla_ir.Prim.n_store = count_of "*")

let () =
  Alcotest.run "roundtrip"
    [
      ( "parser",
        [ QCheck_alcotest.to_alcotest roundtrip ] );
      ( "normalizer",
        [
          QCheck_alcotest.to_alcotest normalizer_total;
          QCheck_alcotest.to_alcotest counts_match_source;
        ] );
    ]
