(* Tests for the points-to solvers: expected sets on hand-written programs,
   the pre-transitive engine's cycle elimination and caching, ablation
   configurations, and the baselines. *)

open Cla_core

let view_of src =
  Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file:"t.c" src))

let pts_of sol name =
  match Solution.find sol name with
  | Some v ->
      List.map (Solution.var_name sol) (Lvalset.to_list (Solution.points_to sol v))
      |> List.sort compare
  | None -> Alcotest.fail ("no variable " ^ name)

let check_pts ?(algorithm = Pipeline.Pretransitive) name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let sol = Pipeline.points_to ~algorithm (view_of src) in
      List.iter
        (fun (var, want) ->
          Alcotest.(check (list string)) var (List.sort compare want) (pts_of sol var))
        expected)

(* ------------------------------------------------------------------ *)
(* Figure 3 and basic flows, on every solver                           *)
(* ------------------------------------------------------------------ *)

let fig3 = "int x, *y; int **z;\nvoid main(void) { z = &y; *z = &x; }"

let basic_for algorithm label =
  [
    check_pts ~algorithm (label ^ ": figure 3") fig3
      [ ("y", [ "x" ]); ("z", [ "y" ]) ];
    check_pts ~algorithm (label ^ ": copy chain")
      "int x, *a, *b, *c;\nvoid f(void) { a = &x; b = a; c = b; }"
      [ ("a", [ "x" ]); ("b", [ "x" ]); ("c", [ "x" ]) ];
    check_pts ~algorithm (label ^ ": load")
      "int x, *p, **pp, *q;\nvoid f(void) { p = &x; pp = &p; q = *pp; }"
      [ ("q", [ "x" ]) ];
    check_pts ~algorithm (label ^ ": store")
      "int x, *p, **pp, *q;\nvoid f(void) { pp = &q; *pp = &x; }"
      [ ("q", [ "x" ]) ];
    check_pts ~algorithm (label ^ ": deref2")
      "int a, *pa, *pb, **ppa, **ppb;\n\
       void f(void) { pa = &a; ppa = &pa; ppb = &pb; *ppb = *ppa; }"
      [ ("pb", [ "a" ]) ];
  ]

(* ------------------------------------------------------------------ *)
(* Pre-transitive engine specifics                                     *)
(* ------------------------------------------------------------------ *)

let test_cycle_unified () =
  let src =
    "int x, *a, *b, *c;\nvoid f(void) { a = b; b = c; c = a; a = &x; }"
  in
  let r = Andersen.solve (view_of src) in
  let sol = r.Andersen.solution in
  List.iter
    (fun v -> Alcotest.(check (list string)) v [ "x" ] (pts_of sol v))
    [ "a"; "b"; "c" ];
  Alcotest.(check bool) "nodes were unified" true
    (r.Andersen.graph_stats.Pretrans.unified >= 2)

let test_self_loop () =
  let src = "int x, *a;\nvoid f(void) { a = a; a = &x; }" in
  let sol = Pipeline.points_to (view_of src) in
  Alcotest.(check (list string)) "self loop harmless" [ "x" ] (pts_of sol "a")

let test_ablation_configs_same_result () =
  let src =
    "int x, y, *a, *b, *c, **pp;\n\
     void f(void) { a = b; b = c; c = a; a = &x; b = &y; pp = &a; *pp = c; }"
  in
  let v = view_of src in
  let base = (Andersen.solve v).Andersen.solution in
  List.iter
    (fun config ->
      let r = Andersen.solve ~config v in
      Alcotest.(check bool)
        (Fmt.str "cache=%b cycle=%b agrees" config.Pretrans.cache
           config.Pretrans.cycle_elim)
        true
        (Solution.equal base r.Andersen.solution))
    [
      { Pretrans.cache = false; cycle_elim = true };
      { Pretrans.cache = true; cycle_elim = false };
      { Pretrans.cache = false; cycle_elim = false };
    ]

let test_no_demand_same_result () =
  let src =
    "int x, *p, *q; int **pp;\nvoid f(void) { p = &x; pp = &p; q = *pp; }"
  in
  let v = view_of src in
  let a = (Andersen.solve ~demand:true v).Andersen.solution in
  let b = (Andersen.solve ~demand:false v).Andersen.solution in
  Alcotest.(check bool) "demand and full load agree" true (Solution.equal a b)

let test_getlvals_cache () =
  let g = Pretrans.create ~nodes:4 () in
  Pretrans.add_base g 0 3;
  ignore (Pretrans.add_edge g 1 0);
  Pretrans.new_pass g;
  ignore (Pretrans.get_lvals g 1);
  ignore (Pretrans.get_lvals g 1);
  let s = Pretrans.stats g in
  Alcotest.(check int) "second query hits cache" 1 s.Pretrans.cache_hits;
  (* a new pass flushes the cache *)
  Pretrans.new_pass g;
  ignore (Pretrans.get_lvals g 1);
  let s' = Pretrans.stats g in
  Alcotest.(check int) "no extra hit after flush" 1 s'.Pretrans.cache_hits

let test_pretrans_edges_dedup () =
  let g = Pretrans.create ~nodes:3 () in
  Alcotest.(check bool) "first add" true (Pretrans.add_edge g 0 1);
  Alcotest.(check bool) "duplicate" false (Pretrans.add_edge g 0 1);
  Alcotest.(check bool) "self edge" false (Pretrans.add_edge g 2 2);
  Alcotest.(check int) "one edge" 1 (Pretrans.stats g).Pretrans.edges

let test_pretrans_unification_dedup () =
  let g = Pretrans.create ~nodes:4 () in
  (* 0 <-> 1 cycle, both pointing at 2 *)
  ignore (Pretrans.add_edge g 0 1);
  ignore (Pretrans.add_edge g 1 0);
  ignore (Pretrans.add_edge g 0 2);
  ignore (Pretrans.add_edge g 1 2);
  Pretrans.add_base g 2 3;
  Pretrans.new_pass g;
  let s = Pretrans.get_lvals g 0 in
  Alcotest.(check (list int)) "reaches base" [ 3 ] (Lvalset.to_list s);
  Alcotest.(check int) "cycle unified" 1 (Pretrans.stats g).Pretrans.unified;
  (* after unification, adding the merged edge again must be a no-op *)
  Alcotest.(check bool) "edge between unified nodes" false (Pretrans.add_edge g 0 1)

let test_indirect_call_resolution () =
  let src =
    "int g1, g2;\n\
     int f(int *p) { return *p; }\n\
     int h(int *p) { return *p; }\n\
     int (*fp)(int *);\n\
     void main(int c) { fp = f; if (c) fp = h; (*fp)(&g1); }"
  in
  let sol = Pipeline.points_to (view_of src) in
  Alcotest.(check (list string)) "fp resolves" [ "f"; "h" ] (pts_of sol "fp")

let test_fresh_nodes_grow () =
  let g = Pretrans.create ~nodes:2 () in
  let ids = List.init 100 (fun _ -> Pretrans.fresh_node g) in
  Alcotest.(check int) "node count" 102 (Pretrans.n_nodes g);
  Alcotest.(check bool) "ids distinct" true
    (List.length (List.sort_uniq compare ids) = 100)

(* ------------------------------------------------------------------ *)
(* Lvalset                                                             *)
(* ------------------------------------------------------------------ *)

let test_lvalset_sharing () =
  let pool = Lvalset.create_pool () in
  let a = Lvalset.of_list pool [ 3; 1; 2; 1 ] in
  let b = Lvalset.of_list pool [ 1; 2; 3 ] in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check (list int)) "sorted dedup" [ 1; 2; 3 ] (Lvalset.to_list a)

let test_lvalset_union () =
  let pool = Lvalset.create_pool () in
  let a = Lvalset.of_list pool [ 1; 3 ] in
  let b = Lvalset.of_list pool [ 2; 3; 4 ] in
  let u = Lvalset.union pool a b in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Lvalset.to_list u);
  (* subset unions return the argument itself *)
  Alcotest.(check bool) "a ∪ u == u" true (Lvalset.union pool a u == u);
  Alcotest.(check bool) "u ∪ a == u" true (Lvalset.union pool u a == u);
  Alcotest.(check bool) "empty left" true (Lvalset.union pool Lvalset.empty a == a)

let test_lvalset_mem () =
  let pool = Lvalset.create_pool () in
  let s = Lvalset.of_list pool [ 2; 4; 6; 8 ] in
  Alcotest.(check bool) "mem 4" true (Lvalset.mem 4 s);
  Alcotest.(check bool) "mem 5" false (Lvalset.mem 5 s);
  Alcotest.(check bool) "mem empty" false (Lvalset.mem 1 Lvalset.empty)

let test_lvalset_iter_diff () =
  let pool = Lvalset.create_pool () in
  let prev = Lvalset.of_list pool [ 1; 3; 5 ] in
  let cur = Lvalset.of_list pool [ 1; 2; 3; 4; 5; 6 ] in
  let acc = ref [] in
  Lvalset.iter_diff ~prev cur (fun x -> acc := x :: !acc);
  Alcotest.(check (list int)) "delta" [ 2; 4; 6 ] (List.rev !acc)

let qcheck_iter_diff =
  QCheck.Test.make ~count:200 ~name:"iter_diff = set difference"
    QCheck.(pair (list (int_bound 50)) (list (int_bound 50)))
    (fun (a, b) ->
      let pool = Lvalset.create_pool () in
      let prev = Lvalset.of_list pool a in
      let cur = Lvalset.union pool prev (Lvalset.of_list pool b) in
      let got = ref [] in
      Lvalset.iter_diff ~prev cur (fun x -> got := x :: !got);
      let expect =
        List.filter (fun x -> not (Lvalset.mem x prev)) (Lvalset.to_list cur)
      in
      List.rev !got = expect)

(* ------------------------------------------------------------------ *)
(* Intset                                                              *)
(* ------------------------------------------------------------------ *)

let test_intset () =
  let s = Intset.create 4 in
  Alcotest.(check bool) "add new" true (Intset.add s 42);
  Alcotest.(check bool) "add dup" false (Intset.add s 42);
  Alcotest.(check bool) "mem" true (Intset.mem s 42);
  Alcotest.(check bool) "not mem" false (Intset.mem s 7);
  Alcotest.(check bool) "zero key" true (Intset.add s 0);
  Alcotest.(check bool) "zero mem" true (Intset.mem s 0);
  for i = 1 to 1000 do
    ignore (Intset.add s (i * 7))
  done;
  (* {42, 0} plus multiples of 7 up to 7000; 42 is already a multiple *)
  Alcotest.(check int) "length after growth" 1001 (Intset.length s);
  Alcotest.(check bool) "still mem" true (Intset.mem s (700 * 7))

let qcheck_intset =
  QCheck.Test.make ~count:100 ~name:"intset behaves like a set"
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let s = Intset.create 8 in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun x ->
          let fresh = not (Hashtbl.mem model x) in
          Hashtbl.replace model x ();
          Intset.add s x = fresh)
        xs
      && Hashtbl.fold (fun k () acc -> acc && Intset.mem s k) model true)

let () =
  Alcotest.run "solvers"
    [
      ("pretransitive", basic_for Pipeline.Pretransitive "pre");
      ("worklist", basic_for Pipeline.Worklist "wl");
      ("bitvector", basic_for Pipeline.Bitvector "bv");
      ( "engine",
        [
          Alcotest.test_case "cycle unification" `Quick test_cycle_unified;
          Alcotest.test_case "self loops" `Quick test_self_loop;
          Alcotest.test_case "ablations agree" `Quick test_ablation_configs_same_result;
          Alcotest.test_case "demand vs full load" `Quick test_no_demand_same_result;
          Alcotest.test_case "reachability cache" `Quick test_getlvals_cache;
          Alcotest.test_case "edge dedup" `Quick test_pretrans_edges_dedup;
          Alcotest.test_case "unification dedup" `Quick test_pretrans_unification_dedup;
          Alcotest.test_case "indirect calls" `Quick test_indirect_call_resolution;
          Alcotest.test_case "node growth" `Quick test_fresh_nodes_grow;
        ] );
      ( "lvalset",
        [
          Alcotest.test_case "hash-consing" `Quick test_lvalset_sharing;
          Alcotest.test_case "union" `Quick test_lvalset_union;
          Alcotest.test_case "mem" `Quick test_lvalset_mem;
          Alcotest.test_case "iter_diff" `Quick test_lvalset_iter_diff;
          QCheck_alcotest.to_alcotest qcheck_iter_diff;
        ] );
      ( "intset",
        [
          Alcotest.test_case "basic" `Quick test_intset;
          QCheck_alcotest.to_alcotest qcheck_intset;
        ] );
    ]
