(* Tests for the mini preprocessor: macro expansion, conditionals,
   includes, comments, and error behaviour. *)

open Cla_cfront

let check = Alcotest.check
let str = Alcotest.string
let bool = Alcotest.bool

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* preprocess and strip line markers / blank lines for easy comparison *)
let pp ?include_dirs ?virtual_fs ?defines src =
  Cpp.preprocess_string ?include_dirs ?virtual_fs ?defines ~file:"t.c" src
  |> String.split_on_char '\n'
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> List.map String.trim
  |> String.concat "\n"

let test_object_macro () =
  check str "simple" "int arr[10];" (pp "#define N 10\nint arr[N];\n");
  check str "nested" "int x = (10+1);"
    (pp "#define N 10\n#define M (N+1)\nint x = M;\n")

let test_function_macro () =
  check str "square" "int y = ((3)*(3));"
    (pp "#define SQR(x) ((x)*(x))\nint y = SQR(3);\n");
  check str "two params" "int y = (1) < (2) ? (1) : (2);"
    (pp "#define MIN(a,b) (a) < (b) ? (a) : (b)\nint y = MIN(1, 2);\n");
  check str "nested call" "int y = ((((2)*(2)))*(((2)*(2))));"
    (pp "#define SQR(x) ((x)*(x))\nint y = SQR(SQR(2));\n")

let test_macro_no_args_no_expand () =
  (* a function-like macro name not followed by '(' does not expand *)
  check str "bare name" "int (*f)(int) = SQR;"
    (pp "#define SQR(x) ((x)*(x))\nint (*f)(int) = SQR;\n")

let test_macro_args_with_commas_in_parens () =
  check str "protected comma" "int y = f(g(1, 2));"
    (pp "#define CALL(x) f(x)\nint y = CALL(g(1, 2));\n")

let test_stringize () =
  check str "stringize" "const char *s = \"a + b\";"
    (pp "#define STR(x) #x\nconst char *s = STR(a + b);\n")

let test_paste () =
  check str "paste" "int foobar = 1;"
    (pp "#define GLUE(a,b) a##b\nint GLUE(foo,bar) = 1;\n")

let test_varargs () =
  check str "varargs" "printf(\"%d\", 42);"
    (pp "#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\nLOG(\"%d\", 42);\n")

let test_recursion_guard () =
  (* self-referential macros must not loop: each use expands once, the
     inner occurrence is not re-expanded (standard "painted blue" rule) *)
  check str "self" "int x + 1 = x + 1 + 1;" (pp "#define x x + 1\nint x = x + 1;\n")

let test_undef () =
  check str "undef" "int N;" (pp "#define N 10\n#undef N\nint N;\n")

let test_ifdef () =
  check str "taken" "int a;" (pp "#define A\n#ifdef A\nint a;\n#endif\n");
  check str "not taken" "" (pp "#ifdef B\nint b;\n#endif\n");
  check str "ifndef" "int c;" (pp "#ifndef B\nint c;\n#endif\n")

let test_if_expr () =
  check str "arith" "int a;" (pp "#if 2 + 2 == 4\nint a;\n#endif\n");
  check str "defined()" "int a;" (pp "#define A 1\n#if defined(A)\nint a;\n#endif\n");
  check str "undefined id is 0" "int b;" (pp "#if FOO\nint a;\n#else\nint b;\n#endif\n");
  check str "ternary" "int a;" (pp "#if 1 ? 1 : 0\nint a;\n#endif\n");
  check str "shift" "int a;" (pp "#if (1 << 4) == 16\nint a;\n#endif\n")

let test_elif_else () =
  let src = {|#define V 2
#if V == 1
int one;
#elif V == 2
int two;
#else
int other;
#endif
|} in
  check str "elif" "int two;" (pp src)

let test_nested_conditionals () =
  let src = {|#define A
#ifdef A
#ifdef B
int ab;
#else
int a_only;
#endif
#endif
|} in
  check str "nested" "int a_only;" (pp src)

let test_inactive_branches_dont_expand () =
  (* an #error in a dead branch must not fire *)
  let src = "#if 0\n#error dead branch\n#endif\nint ok;\n" in
  check str "dead error" "int ok;" (pp src)

let test_include_virtual () =
  let virtual_fs = [ ("config.h", "#define SIZE 8\n") ] in
  check str "include"
    "int buf[8];"
    (pp ~virtual_fs "#include \"config.h\"\nint buf[SIZE];\n")

let test_include_guard () =
  let virtual_fs =
    [ ("g.h", "#ifndef G_H\n#define G_H\nint g;\n#endif\n") ]
  in
  check str "double include is idempotent" "int g;\nint x;"
    (pp ~virtual_fs "#include \"g.h\"\n#include \"g.h\"\nint x;\n")

let test_missing_system_include_tolerated () =
  (* <stdio.h> is absent in the sealed container: it expands to nothing *)
  check str "missing system header" "int x;" (pp "#include <stdio.h>\nint x;\n")

let test_missing_local_include_fails () =
  check bool "missing local include raises" true
    (try
       ignore (pp "#include \"nonexistent_417.h\"\nint x;\n");
       false
     with Cpp.Cpp_error _ -> true)

let test_error_directive () =
  check bool "#error raises" true
    (try
       ignore (pp "#error boom\n");
       false
     with Cpp.Cpp_error (m, _, _) -> contains ~affix:"boom" m)

let test_comments () =
  check str "line comment" "int a;" (pp "int a; // comment\n");
  check str "block comment" "int a;" (pp "int /* hidden */ a;\n");
  check str "multiline comment" "int a;\nint b;"
    (pp "int a; /* one\ntwo\nthree */ int b;\n");
  check str "comment chars in string" "char *s = \"/* not a comment */\";"
    (pp "char *s = \"/* not a comment */\";\n")

let test_continuation () =
  check str "backslash newline" "int x = 1 + 2;" (pp "int x = 1 \\\n+ 2;\n");
  check str "macro continuation" "int y = 1 + 2;"
    (pp "#define V 1 \\\n  + 2\nint y = V;\n")

let test_line_markers_track_origin () =
  let virtual_fs = [ ("h.h", "int from_header;\n") ] in
  let out =
    Cpp.preprocess_string ~virtual_fs ~file:"m.c"
      "#include \"h.h\"\nint from_main;\n"
  in
  check bool "marker for header" true (contains ~affix:"\"h.h\"" out);
  check bool "marker for main" true (contains ~affix:"\"m.c\"" out)

let test_defines_option () =
  check str "predefine" "int x = 7;"
    (pp ~defines:[ ("SEVEN", "7") ] "int x = SEVEN;\n")

let test_unterminated_if_fails () =
  check bool "unterminated #if raises" true
    (try
       ignore (pp "#if 1\nint x;\n");
       false
     with Cpp.Cpp_error _ -> true)

let () =
  Alcotest.run "cpp"
    [
      ( "macros",
        [
          Alcotest.test_case "object-like" `Quick test_object_macro;
          Alcotest.test_case "function-like" `Quick test_function_macro;
          Alcotest.test_case "bare name" `Quick test_macro_no_args_no_expand;
          Alcotest.test_case "nested commas" `Quick test_macro_args_with_commas_in_parens;
          Alcotest.test_case "stringize" `Quick test_stringize;
          Alcotest.test_case "paste" `Quick test_paste;
          Alcotest.test_case "varargs" `Quick test_varargs;
          Alcotest.test_case "recursion guard" `Quick test_recursion_guard;
          Alcotest.test_case "undef" `Quick test_undef;
          Alcotest.test_case "predefines" `Quick test_defines_option;
        ] );
      ( "conditionals",
        [
          Alcotest.test_case "ifdef" `Quick test_ifdef;
          Alcotest.test_case "#if expressions" `Quick test_if_expr;
          Alcotest.test_case "elif/else" `Quick test_elif_else;
          Alcotest.test_case "nesting" `Quick test_nested_conditionals;
          Alcotest.test_case "dead branches" `Quick test_inactive_branches_dont_expand;
          Alcotest.test_case "unterminated" `Quick test_unterminated_if_fails;
        ] );
      ( "includes",
        [
          Alcotest.test_case "virtual fs" `Quick test_include_virtual;
          Alcotest.test_case "include guards" `Quick test_include_guard;
          Alcotest.test_case "missing <system>" `Quick test_missing_system_include_tolerated;
          Alcotest.test_case "missing local" `Quick test_missing_local_include_fails;
          Alcotest.test_case "line markers" `Quick test_line_markers_track_origin;
        ] );
      ( "text",
        [
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "continuations" `Quick test_continuation;
          Alcotest.test_case "#error" `Quick test_error_directive;
        ] );
    ]
