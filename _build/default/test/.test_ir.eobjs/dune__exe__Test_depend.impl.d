test/test_depend.ml: Alcotest Andersen Array Cla_core Cla_depend Compilep Fmt List Objfile String
