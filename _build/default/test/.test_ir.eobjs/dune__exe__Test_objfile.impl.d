test/test_objfile.ml: Alcotest Array Binio Cla_core Cla_ir Cla_workload Filename Fmt Int64 List Objfile Prim QCheck QCheck_alcotest String Sys Var
