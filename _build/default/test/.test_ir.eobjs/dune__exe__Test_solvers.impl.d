test/test_solvers.ml: Alcotest Andersen Cla_core Compilep Fmt Hashtbl Intset List Lvalset Objfile Pipeline Pretrans QCheck QCheck_alcotest Solution
