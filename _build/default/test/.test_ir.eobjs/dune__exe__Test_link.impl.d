test/test_link.ml: Alcotest Array Cla_core Cla_ir Compilep Filename Fmt Linkp List Lvalset Objfile Pipeline Solution Sys
