test/test_faults.ml: Alcotest Andersen Cla_core Cla_workload Compilep Diag Faults Filename Fmt Genc Linkp List Loader Objfile Pipeline Profile Rng Solution String Sys
