test/test_loader.ml: Alcotest Andersen Array Cla_core Compilep Fmt List Loader Lvalset Objfile Pipeline Solution
