test/test_solvers.mli:
