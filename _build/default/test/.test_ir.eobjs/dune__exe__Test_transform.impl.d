test/test_transform.ml: Alcotest Andersen Array Cla_core Cla_workload Compilep Fmt Int64 Linkp List Lvalset Objfile Pipeline QCheck QCheck_alcotest Solution Transform
