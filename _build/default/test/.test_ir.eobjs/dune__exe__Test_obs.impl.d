test/test_obs.ml: Alcotest Andersen Cla_core Cla_obs Fmt List Loader Lvalset Option Pipeline Pretrans Solution Sys
