test/test_ir.ml: Alcotest Array Cla_ir List Loc Prim Strength Var Vartab
