test/test_pipeline.ml: Alcotest Array Cla_core Fmt List Lvalset Objfile Pipeline Solution String
