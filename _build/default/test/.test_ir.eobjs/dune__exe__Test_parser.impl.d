test/test_parser.ml: Alcotest Cast Cla_cfront Cla_ir Clexer Cparser Fmt List String
