test/test_lexer.ml: Alcotest Cla_cfront Clexer Ctoken Fmt Lexing List
