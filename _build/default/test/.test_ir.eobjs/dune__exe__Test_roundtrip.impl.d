test/test_roundtrip.ml: Alcotest Array Cast Cla_cfront Cla_ir Cparser Fmt Frontend Gen Int64 List QCheck QCheck_alcotest String
