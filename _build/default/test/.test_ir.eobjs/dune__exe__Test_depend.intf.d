test/test_depend.mli:
