test/test_pipeline.mli:
