test/test_roundtrip.mli:
