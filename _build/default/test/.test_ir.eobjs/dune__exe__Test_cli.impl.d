test/test_cli.ml: Alcotest Buffer Filename Fmt List String Sys Unix
