test/test_link.mli:
