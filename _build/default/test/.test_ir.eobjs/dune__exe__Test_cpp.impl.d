test/test_cpp.ml: Alcotest Cla_cfront Cpp List String
