test/test_realworld.mli:
