test/test_faults.mli:
