test/test_workload.ml: Alcotest Andersen Array Cla_core Cla_ir Cla_workload Fmt Genc Genir List Objfile Pipeline Profile Rng Solution String
