test/test_equiv.ml: Alcotest Andersen Bitsolver Cla_core Cla_ir Cla_workload Int64 List Lvalset Objfile Pipeline Pretrans QCheck QCheck_alcotest Solution Steensgaard Worklist
