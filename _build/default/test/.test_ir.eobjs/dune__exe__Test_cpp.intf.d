test/test_cpp.mli:
