test/test_realworld.ml: Alcotest Andersen Array Bitsolver Cla_cfront Cla_core Cla_depend Compilep Fmt Lazy List Loader Lvalset Objfile Pipeline Solution String Worklist
