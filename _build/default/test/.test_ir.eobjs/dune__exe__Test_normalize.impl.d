test/test_normalize.ml: Alcotest Array Cla_cfront Cla_ir Fmt Frontend List Normalize Prim Prog String Var
