(* Tests for the forward data-dependence analysis (Section 2, Figure 1). *)

open Cla_core
module Depend = Cla_depend.Depend

let prepare src =
  let view =
    Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file:"eg1.c" src))
  in
  let pta = Andersen.solve view in
  Depend.prepare view pta

let name_of dep (d : Depend.dependent) =
  dep.Depend.view.Objfile.rvars.(d.Depend.d_var).Objfile.vname

let dependents dep ?(non_targets = []) target =
  match Depend.query_by_name dep ~non_targets target with
  | Some r -> List.map (name_of dep) r.Depend.r_dependents |> List.sort compare
  | None -> Alcotest.fail ("no target " ^ target)

let find_dependent dep target var =
  match Depend.query_by_name dep target with
  | Some r -> List.find (fun d -> name_of dep d = var) r.Depend.r_dependents
  | None -> Alcotest.fail ("no target " ^ target)

(* the paper's Figure 1 program *)
let fig1 =
  {|short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;
void main(void) {
v = &w;
u = target;
*v = u;
s.x = w;
}
|}

let test_figure1 () =
  let dep = prepare fig1 in
  Alcotest.(check (list string)) "u, w, S.x depend on target"
    [ "S.x"; "u"; "w" ] (dependents dep "target")

let test_figure1_chain_shape () =
  let dep = prepare fig1 in
  match Depend.query_by_name dep "target" with
  | Some r ->
      ignore r;
      let sx = find_dependent dep "target" "S.x" in
      (* S.x <- w <- u <- target: three steps *)
      Alcotest.(check int) "chain length" 3 (List.length sx.Depend.d_chain);
      Alcotest.(check int) "hops recorded" 3 sx.Depend.d_hops;
      Alcotest.(check int) "all strong" 0 sx.Depend.d_weak;
      let printed = Fmt.str "%a" (Depend.pp_dependent dep) sx in
      Alcotest.(check bool)
        (Fmt.str "figure-1 format: %s" printed)
        true
        (printed = "S.x/short <eg1.c:2> ! w/short <eg1.c:9> ! u/short <eg1.c:8> ! target/short <eg1.c:7> where target/short <eg1.c:1>")
  | None -> Alcotest.fail "no target"

let test_non_targets_prune () =
  let dep = prepare fig1 in
  Alcotest.(check (list string)) "pruning w kills downstream"
    [ "u" ]
    (dependents dep ~non_targets:[ "w" ] "target")

let test_none_strength_ignored () =
  let dep =
    prepare "int y, z1, z2;\nvoid f(void) { z1 = !y; z2 = y && z1; }"
  in
  Alcotest.(check (list string)) "logical ops sever" [] (dependents dep "y")

let test_weak_ranked_after_strong () =
  let dep =
    prepare
      "int y, s1, w1;\nvoid f(void) { s1 = y + 1; w1 = y >> 3; }"
  in
  match Depend.query_by_name dep "y" with
  | Some r ->
      let names = List.map (name_of dep) r.Depend.r_dependents in
      Alcotest.(check (list string)) "strong first" [ "s1"; "w1" ] names;
      let w1 = List.nth r.Depend.r_dependents 1 in
      Alcotest.(check int) "weak count" 1 w1.Depend.d_weak
  | None -> Alcotest.fail "no y"

let test_through_pointers () =
  let dep =
    prepare
      "int t, sink, *p, buf;\n\
       void f(void) { p = &buf; *p = t; sink = buf; }"
  in
  Alcotest.(check (list string)) "flows through *p"
    [ "buf"; "sink" ] (dependents dep "t")

let test_through_loads () =
  let dep =
    prepare
      "int t, out, buf, *p;\n\
       void f(void) { p = &buf; buf = t; out = *p; }"
  in
  Alcotest.(check (list string)) "x = *p picks up pointee deps"
    [ "buf"; "out" ] (dependents dep "t")

let test_through_calls () =
  let dep =
    prepare
      "int t, r;\n\
       int id(int v) { return v; }\n\
       void f(void) { r = id(t); }"
  in
  let deps = dependents dep "t" in
  Alcotest.(check bool) "r depends through the call" true (List.mem "r" deps)

let test_through_indirect_calls () =
  let dep =
    prepare
      "int t, r;\n\
       int id(int v) { return v; }\n\
       int (*fp)(int);\n\
       void f(void) { fp = id; r = (*fp)(t); }"
  in
  let deps = dependents dep "t" in
  Alcotest.(check bool)
    (Fmt.str "r depends through the function pointer: [%s]"
       (String.concat "; " deps))
    true (List.mem "r" deps)

let test_shortest_chain_preferred () =
  let dep =
    prepare
      "int t, a, b, c, d;\n\
       void f(void) { a = t; b = a; c = b; d = c; d = t; }"
  in
  let d = find_dependent dep "t" "d" in
  Alcotest.(check int) "direct chain chosen" 1 d.Depend.d_hops

let test_strong_path_beats_short_weak () =
  (* d reachable in 1 weak hop or 2 strong hops: strong wins *)
  let dep =
    prepare
      "int t, mid, d;\nvoid f(void) { d = t * 2; mid = t; d = mid; }"
  in
  let d = find_dependent dep "t" "d" in
  Alcotest.(check int) "no weak links" 0 d.Depend.d_weak;
  Alcotest.(check int) "two strong hops" 2 d.Depend.d_hops

let narrowing_src =
  {|short counter;
short mirror, *ptr, sink;
int already_wide;
double rate;
void tick(void) {
counter = 40000;
mirror = counter;
ptr = &sink;
*ptr = mirror;
already_wide = counter;
rate = counter * 2;
}
|}

let test_narrowing_verdicts () =
  let dep = prepare narrowing_src in
  match Depend.query_by_name dep "counter" with
  | None -> Alcotest.fail "no counter"
  | Some r ->
      let verdicts = Depend.check_narrowing dep r ~new_type:"int" in
      let find name =
        List.find
          (fun (n : Depend.narrowing) ->
            dep.Depend.view.Objfile.rvars.(n.Depend.nv_var).Objfile.vname = name)
          verdicts
      in
      Alcotest.(check bool) "mirror must widen" true
        ((find "mirror").Depend.nv_verdict = Depend.Must_widen);
      Alcotest.(check bool) "sink must widen" true
        ((find "sink").Depend.nv_verdict = Depend.Must_widen);
      Alcotest.(check bool) "already_wide is fine" true
        ((find "already_wide").Depend.nv_verdict = Depend.Wide_enough);
      Alcotest.(check bool) "double flagged for review" true
        ((find "rate").Depend.nv_verdict = Depend.Not_integer)

let test_constants_recorded () =
  let dep = prepare narrowing_src in
  match Objfile.find_targets dep.Depend.view "counter" with
  | t :: _ ->
      Alcotest.(check (list int64)) "40000 observed" [ 40000L ]
        (Depend.constants_of dep t)
  | [] -> Alcotest.fail "no counter"

let test_width_of_type () =
  Alcotest.(check (option int)) "char" (Some 8) (Depend.width_of_type "char");
  Alcotest.(check (option int)) "short" (Some 16) (Depend.width_of_type "short");
  Alcotest.(check (option int)) "unsigned long" (Some 64)
    (Depend.width_of_type "unsigned long");
  Alcotest.(check (option int)) "pointer" None (Depend.width_of_type "int*");
  Alcotest.(check (option int)) "struct" None (Depend.width_of_type "struct S")

let test_negative_constants () =
  let dep = prepare "int v;\nvoid f(void) { v = -7; v = 'A'; }" in
  match Objfile.find_targets dep.Depend.view "v" with
  | t :: _ ->
      Alcotest.(check (list int64)) "both constants, signs preserved"
        [ -7L; 65L ]
        (List.sort compare (Depend.constants_of dep t))
  | [] -> Alcotest.fail "no v"

let test_tree_view () =
  let dep = prepare narrowing_src in
  match Depend.query_by_name dep "counter" with
  | None -> Alcotest.fail "no counter"
  | Some r ->
      let out = Fmt.str "%a" (Depend.pp_tree dep) r in
      let has affix =
        let n = String.length affix and m = String.length out in
        let rec go i = i + n <= m && (String.sub out i n = affix || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("root first:\n" ^ out) true (has "counter/short");
      Alcotest.(check bool) "mirror is a child" true (has "|-- mirror/short");
      Alcotest.(check bool) "sink nested under mirror" true (has "|   `-- sink/short");
      Alcotest.(check bool) "weak op marked" true (has "[*]")

let test_unknown_target () =
  let dep = prepare "int x;" in
  Alcotest.(check bool) "unknown target gives None" true
    (Depend.query_by_name dep "missing" = None)

let () =
  Alcotest.run "depend"
    [
      ( "figure 1",
        [
          Alcotest.test_case "dependent set" `Quick test_figure1;
          Alcotest.test_case "chain format" `Quick test_figure1_chain_shape;
          Alcotest.test_case "non-targets" `Quick test_non_targets_prune;
        ] );
      ( "strength",
        [
          Alcotest.test_case "none severs" `Quick test_none_strength_ignored;
          Alcotest.test_case "weak ranked last" `Quick test_weak_ranked_after_strong;
          Alcotest.test_case "strong beats short weak" `Quick
            test_strong_path_beats_short_weak;
          Alcotest.test_case "shortest among equals" `Quick test_shortest_chain_preferred;
        ] );
      ( "pointer flows",
        [
          Alcotest.test_case "stores" `Quick test_through_pointers;
          Alcotest.test_case "loads" `Quick test_through_loads;
          Alcotest.test_case "calls" `Quick test_through_calls;
          Alcotest.test_case "indirect calls" `Quick test_through_indirect_calls;
        ] );
      ( "narrowing",
        [
          Alcotest.test_case "verdicts" `Quick test_narrowing_verdicts;
          Alcotest.test_case "constants" `Quick test_constants_recorded;
          Alcotest.test_case "type widths" `Quick test_width_of_type;
          Alcotest.test_case "negative constants" `Quick test_negative_constants;
          Alcotest.test_case "tree view" `Quick test_tree_view;
        ] );
      ("api", [ Alcotest.test_case "unknown target" `Quick test_unknown_target ]);
    ]
