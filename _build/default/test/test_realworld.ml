(* Integration tests on realistic C: a small "project" — dynamic vector,
   chained hash table, event loop with callback registry — written the way
   legacy C code bases are (typedefs, header shared via #include, function
   pointers, heap allocation, macros).  The assertions pin down points-to
   facts a user of the library would rely on. *)

open Cla_core

(* ------------------------------------------------------------------ *)
(* The corpus                                                          *)
(* ------------------------------------------------------------------ *)

let common_h =
  {|
#ifndef COMMON_H
#define COMMON_H

#define NULL ((void *)0)
#define VEC_INIT_CAP 8

typedef unsigned long size_t;
extern void *malloc(size_t n);
extern void free(void *p);

typedef struct vec {
  int **items;     /* array of borrowed pointers */
  int count;
  int cap;
} vec_t;

typedef void (*handler_t)(int *event_data);

typedef struct bucket {
  int key;
  int *value;
  struct bucket *next;
} bucket_t;

typedef struct table {
  bucket_t *slots[16];
  int size;
} table_t;

extern vec_t *vec_new(void);
extern void vec_push(vec_t *v, int *item);
extern int *vec_get(vec_t *v, int i);

extern void table_put(table_t *t, int key, int *value);
extern int *table_get(table_t *t, int key);

extern void on_event(handler_t h);
extern void dispatch(int *data);

#endif
|}

let vec_c =
  {|
#include "common.h"

vec_t *vec_new(void) {
  vec_t *v;
  v = (vec_t *)malloc(sizeof(vec_t));
  v->items = (int **)malloc(VEC_INIT_CAP * sizeof(int *));
  v->count = 0;
  v->cap = VEC_INIT_CAP;
  return v;
}

void vec_push(vec_t *v, int *item) {
  if (v->count == v->cap) {
    v->cap = v->cap * 2;
  }
  v->items[v->count] = item;
  v->count = v->count + 1;
}

int *vec_get(vec_t *v, int i) {
  if (i < 0 || i >= v->count) return NULL;
  return v->items[i];
}
|}

let table_c =
  {|
#include "common.h"

static int hash(int key) { return (key * 2654435761) & 15; }

void table_put(table_t *t, int key, int *value) {
  bucket_t *b;
  int h;
  h = hash(key);
  b = (bucket_t *)malloc(sizeof(bucket_t));
  b->key = key;
  b->value = value;
  b->next = t->slots[h];
  t->slots[h] = b;
  t->size = t->size + 1;
}

int *table_get(table_t *t, int key) {
  bucket_t *b;
  for (b = t->slots[hash(key)]; b; b = b->next) {
    if (b->key == key) return b->value;
  }
  return NULL;
}
|}

let events_c =
  {|
#include "common.h"

static handler_t handlers[4];
static int n_handlers;

void on_event(handler_t h) {
  handlers[n_handlers] = h;
  n_handlers = n_handlers + 1;
}

void dispatch(int *data) {
  int i;
  for (i = 0; i < n_handlers; i++) {
    (*handlers[i])(data);
  }
}
|}

let app_c =
  {|
#include "common.h"

int sensor_a, sensor_b;
int observed;

static void log_handler(int *event_data) {
  observed = *event_data;
}

static void count_handler(int *event_data) {
  static int count;
  count = count + !event_data;   /* no data dependence on *event_data */
}

int *current_reading;

int main(void) {
  vec_t *readings;
  table_t sensors;
  int *r;

  readings = vec_new();
  vec_push(readings, &sensor_a);
  vec_push(readings, &sensor_b);
  r = vec_get(readings, 0);
  current_reading = r;

  table_put(&sensors, 1, &sensor_a);
  table_put(&sensors, 2, &sensor_b);
  r = table_get(&sensors, 1);

  on_event(log_handler);
  on_event(count_handler);
  dispatch(&sensor_a);
  return 0;
}
|}

let compile () =
  let options =
    {
      Compilep.default_options with
      Compilep.virtual_fs = [ ("common.h", common_h) ];
    }
  in
  Pipeline.compile_link ~options
    [ ("vec.c", vec_c); ("table.c", table_c); ("events.c", events_c); ("app.c", app_c) ]

let view = lazy (compile ())
let result = lazy (Andersen.solve (Lazy.force view))

let sol () = (Lazy.force result).Andersen.solution

let pts name =
  let sol = sol () in
  match Solution.find sol name with
  | Some v ->
      List.map (Solution.var_name sol) (Lvalset.to_list (Solution.points_to sol v))
      |> List.sort compare
  | None -> Alcotest.fail ("no variable " ^ name)

let contains l x = List.mem x l

(* ------------------------------------------------------------------ *)
(* Points-to facts                                                     *)
(* ------------------------------------------------------------------ *)

let test_vector_flow () =
  (* items stored through vec_push surface again through vec_get *)
  let r = pts "current_reading" in
  Alcotest.(check bool)
    (Fmt.str "current_reading sees the sensors: [%s]" (String.concat ";" r))
    true
    (contains r "sensor_a" && contains r "sensor_b")

let test_vec_items_heap () =
  (* the items array is a malloc'd buffer *)
  let f = pts "vec.items" in
  Alcotest.(check bool) "items field points to a heap site" true
    (List.exists (fun n -> String.length n >= 6 && String.sub n 0 6 = "malloc") f)

let test_table_values () =
  (* values put into the table are reachable from the value field *)
  let f = pts "bucket.value" in
  Alcotest.(check bool) "bucket.value holds both sensors" true
    (contains f "sensor_a" && contains f "sensor_b")

let test_table_chain () =
  (* the chain links point to heap buckets *)
  let f = pts "bucket.next" in
  Alcotest.(check bool) "next points to malloc'd buckets" true
    (List.exists (fun n -> String.length n >= 6 && String.sub n 0 6 = "malloc") f)

let test_handlers_resolved () =
  let f = pts "handlers" in
  Alcotest.(check (list string)) "registry holds both handlers"
    [ "count_handler"; "log_handler" ] f

let test_dispatch_reaches_handlers () =
  (* the dispatched &sensor_a reaches log_handler's parameter *)
  let view = Lazy.force view in
  let sol = sol () in
  let fd =
    Array.to_list view.Objfile.rfundefs
    |> List.find (fun (f : Objfile.fund_rec) ->
           Solution.var_name sol f.Objfile.ffvar = "log_handler")
  in
  let arg = fd.Objfile.fargs.(0) in
  let f =
    List.map (Solution.var_name sol) (Lvalset.to_list (Solution.points_to sol arg))
  in
  Alcotest.(check bool)
    (Fmt.str "log_handler receives &sensor_a: [%s]" (String.concat ";" f))
    true (contains f "sensor_a")

let test_statics_private () =
  (* two files define a static [hash]-like name space: the counters of
     app.c must not leak into other units' objects *)
  let view = Lazy.force view in
  let hashes = Objfile.find_targets view "count" in
  Alcotest.(check bool) "static count exists once" true (List.length hashes >= 1)

let test_demand_loading_partial () =
  let ls = (Lazy.force result).Andersen.loader_stats in
  Alcotest.(check bool)
    (Fmt.str "loaded %d <= in file %d" ls.Loader.s_loaded ls.Loader.s_in_file)
    true
    (ls.Loader.s_loaded <= ls.Loader.s_in_file)

(* ------------------------------------------------------------------ *)
(* Dependence facts                                                    *)
(* ------------------------------------------------------------------ *)

let test_dependence_through_dispatch () =
  (* changing sensor_a's type affects [observed] (through the event
     handler) but not count_handler's counter (the ! severs it) *)
  let view = Lazy.force view in
  let dep = Cla_depend.Depend.prepare view (Lazy.force result) in
  match Cla_depend.Depend.query_by_name dep "sensor_a" with
  | Some r ->
      let deps =
        List.map
          (fun (d : Cla_depend.Depend.dependent) ->
            view.Objfile.rvars.(d.Cla_depend.Depend.d_var).Objfile.vname)
          r.Cla_depend.Depend.r_dependents
      in
      Alcotest.(check bool)
        (Fmt.str "observed depends on sensor_a: [%s]" (String.concat ";" deps))
        true (contains deps "observed");
      Alcotest.(check bool) "count does not (only !data)" false
        (contains deps "count")
  | None -> Alcotest.fail "sensor_a not found"

let test_solver_agreement_on_corpus () =
  let view = Lazy.force view in
  let a = (Lazy.force result).Andersen.solution in
  let w = Worklist.solve view in
  let b = Bitsolver.solve view in
  Alcotest.(check bool) "pretransitive = worklist" true (Solution.equal a w);
  Alcotest.(check bool) "pretransitive = bitvector" true (Solution.equal a b)

let test_field_independent_differs () =
  (* in field-independent mode the whole vec_t / bucket_t chunks merge *)
  let options =
    {
      Compilep.default_options with
      Compilep.virtual_fs = [ ("common.h", common_h) ];
      Compilep.mode = Cla_cfront.Normalize.Field_independent;
    }
  in
  let v =
    Pipeline.compile_link ~options
      [ ("vec.c", vec_c); ("table.c", table_c); ("events.c", events_c); ("app.c", app_c) ]
  in
  let sol = Pipeline.points_to v in
  ignore sol;
  Alcotest.(check bool) "field-independent compiles and solves" true true

let () =
  Alcotest.run "realworld"
    [
      ( "points-to",
        [
          Alcotest.test_case "vector flow" `Quick test_vector_flow;
          Alcotest.test_case "heap buffers" `Quick test_vec_items_heap;
          Alcotest.test_case "table values" `Quick test_table_values;
          Alcotest.test_case "bucket chains" `Quick test_table_chain;
          Alcotest.test_case "handler registry" `Quick test_handlers_resolved;
          Alcotest.test_case "dispatch to handlers" `Quick test_dispatch_reaches_handlers;
          Alcotest.test_case "statics stay private" `Quick test_statics_private;
          Alcotest.test_case "demand loading" `Quick test_demand_loading_partial;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "through dispatch" `Quick test_dependence_through_dispatch;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "solver agreement" `Quick test_solver_agreement_on_corpus;
          Alcotest.test_case "field-independent mode" `Quick test_field_independent_differs;
        ] );
    ]
