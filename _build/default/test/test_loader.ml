(* Tests for the demand loader: load-on-demand accounting, the discard
   strategy, re-reads, and the pointer-relevance filter. *)

open Cla_core

let view_of src =
  Objfile.view_of_string (Objfile.write (Compilep.compile_string ~file:"t.c" src))

let test_statics_always_loaded () =
  let v = view_of "int x, *p; void f(void) { p = &x; }" in
  let l = Loader.create v in
  let s = Loader.statics l in
  Alcotest.(check int) "one static" 1 (Array.length s);
  Alcotest.(check int) "counted as loaded" 1 (Loader.stats l).Loader.s_loaded

let test_block_demand () =
  let v = view_of "int a, b, c; void f(void) { b = a; c = b; }" in
  let l = Loader.create v in
  Alcotest.(check int) "nothing loaded yet" 0 (Loader.stats l).Loader.s_loaded;
  (match Objfile.find_targets v "a" with
  | a :: _ ->
      let prims = Loader.block l a in
      Alcotest.(check int) "a's block has one record" 1 (List.length prims)
  | [] -> Alcotest.fail "no a");
  Alcotest.(check int) "one loaded" 1 (Loader.stats l).Loader.s_loaded

let test_reload_counted () =
  let v = view_of "int a, b; void f(void) { b = a; }" in
  let l = Loader.create v in
  match Objfile.find_targets v "a" with
  | a :: _ ->
      ignore (Loader.block l a);
      ignore (Loader.block l a);
      let s = Loader.stats l in
      Alcotest.(check int) "loaded twice" 2 s.Loader.s_loaded;
      Alcotest.(check int) "one reload" 1 s.Loader.s_reloads
  | [] -> Alcotest.fail "no a"

let test_in_file_total () =
  let v = view_of "int x, y, *p; void f(void) { x = y; p = &x; *p = y; }" in
  let l = Loader.create v in
  Alcotest.(check int) "in file" 3 (Loader.stats l).Loader.s_in_file

let test_relevance_filter () =
  Alcotest.(check bool) "plus kept" true (Loader.pointer_relevant_op "+");
  Alcotest.(check bool) "cast kept" true (Loader.pointer_relevant_op "cast");
  Alcotest.(check bool) "shift dropped" false (Loader.pointer_relevant_op ">>");
  Alcotest.(check bool) "mul dropped" false (Loader.pointer_relevant_op "*");
  Alcotest.(check bool) "bang dropped" false (Loader.pointer_relevant_op "!")

let test_analysis_skips_arithmetic () =
  (* y = x * z is irrelevant to aliasing: p's set must not flow through *)
  let v =
    view_of
      "int *p, *q, x; int *r;\n\
       void f(void) { p = &x; q = p; r = (int*)((long)q * 2); }"
  in
  let sol = Pipeline.points_to v in
  (match Solution.find sol "q" with
  | Some q ->
      Alcotest.(check int) "q points to x" 1
        (Lvalset.cardinal (Solution.points_to sol q))
  | None -> Alcotest.fail "no q");
  match Solution.find sol "r" with
  | Some r ->
      Alcotest.(check int) "r gets nothing through *" 0
        (Lvalset.cardinal (Solution.points_to sol r))
  | None -> Alcotest.fail "no r"

let test_demand_loads_less_than_file () =
  (* a variable never involved in pointer flow: its block stays unloaded *)
  let v =
    view_of
      "int x, *p; int dead1, dead2;\n\
       void f(void) { p = &x; dead2 = dead1; dead1 = dead2; }"
  in
  let r = Andersen.solve v in
  let s = r.Andersen.loader_stats in
  Alcotest.(check bool)
    (Fmt.str "loaded %d < in file %d" s.Loader.s_loaded s.Loader.s_in_file)
    true
    (s.Loader.s_loaded < s.Loader.s_in_file)

let test_discard_strategy_counts () =
  (* copies and addrs are discarded; complex assignments are retained *)
  let v =
    view_of
      "int x, y, *p, *q, **pp;\n\
       void f(void) { p = &x; q = p; *q = y; y = *q; pp = &p; }"
  in
  let r = Andersen.solve v in
  let s = r.Andersen.loader_stats in
  (* exactly the store and the load are kept in core *)
  Alcotest.(check int) "in core = complex retained" 2 s.Loader.s_in_core

let () =
  Alcotest.run "loader"
    [
      ( "accounting",
        [
          Alcotest.test_case "statics" `Quick test_statics_always_loaded;
          Alcotest.test_case "demand blocks" `Quick test_block_demand;
          Alcotest.test_case "re-reads" `Quick test_reload_counted;
          Alcotest.test_case "in-file total" `Quick test_in_file_total;
          Alcotest.test_case "loaded < in-file" `Quick test_demand_loads_less_than_file;
          Alcotest.test_case "discard strategy" `Quick test_discard_strategy_counts;
        ] );
      ( "relevance",
        [
          Alcotest.test_case "operator filter" `Quick test_relevance_filter;
          Alcotest.test_case "arithmetic skipped by analysis" `Quick
            test_analysis_skips_arithmetic;
        ] );
    ]
