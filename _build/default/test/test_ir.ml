(* Unit tests for the IR layer: locations, Table 1 strengths, variables,
   the variable table, and primitive-assignment bookkeeping. *)

open Cla_ir

let check = Alcotest.check
let str = Alcotest.string
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Loc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_loc_pp () =
  let l = Loc.make ~file:"eg1.c" ~line:3 ~col:7 in
  check str "figure-1 format" "<eg1.c:3>" (Loc.to_string l);
  check str "unknown location" "<?>" (Loc.to_string Loc.none)

let test_loc_compare () =
  let a = Loc.make ~file:"a.c" ~line:1 ~col:1 in
  let b = Loc.make ~file:"a.c" ~line:2 ~col:1 in
  let c = Loc.make ~file:"b.c" ~line:1 ~col:1 in
  check bool "same file line order" true (Loc.compare a b < 0);
  check bool "file order dominates" true (Loc.compare b c < 0);
  check bool "equal" true (Loc.equal a a);
  check bool "not equal" false (Loc.equal a b)

(* ------------------------------------------------------------------ *)
(* Strength (Table 1)                                                  *)
(* ------------------------------------------------------------------ *)

let st = Alcotest.testable Strength.pp Strength.equal

let test_table1_strong () =
  List.iter
    (fun op ->
      check st (op ^ " arg1") Strength.Strong (Strength.classify op Strength.Arg1);
      check st (op ^ " arg2") Strength.Strong (Strength.classify op Strength.Arg2))
    [ "+"; "-"; "|"; "&"; "^" ]

let test_table1_mul () =
  check st "* arg1" Strength.Weak (Strength.classify "*" Strength.Arg1);
  check st "* arg2" Strength.Weak (Strength.classify "*" Strength.Arg2)

let test_table1_shift_mod () =
  List.iter
    (fun op ->
      check st (op ^ " arg1") Strength.Weak (Strength.classify op Strength.Arg1);
      check st (op ^ " arg2") Strength.None_ (Strength.classify op Strength.Arg2))
    [ "%"; ">>"; "<<" ]

let test_table1_unary () =
  check st "unary +" Strength.Strong (Strength.classify "u+" Strength.Arg1);
  check st "unary -" Strength.Strong (Strength.classify "u-" Strength.Arg1)

let test_table1_logical () =
  List.iter
    (fun op ->
      check st (op ^ " arg1") Strength.None_ (Strength.classify op Strength.Arg1))
    [ "&&"; "||"; "!" ]

let test_strength_order () =
  check bool "none < weak" true (Strength.compare Strength.None_ Strength.Weak < 0);
  check bool "weak < strong" true (Strength.compare Strength.Weak Strength.Strong < 0);
  check st "min" Strength.None_ (Strength.min Strength.None_ Strength.Strong);
  check st "max" Strength.Strong (Strength.max Strength.Weak Strength.Strong)

let test_comparisons_sever () =
  List.iter
    (fun op ->
      check st op Strength.None_ (Strength.classify op Strength.Arg1))
    [ "=="; "!="; "<"; ">"; "<="; ">=" ]

(* ------------------------------------------------------------------ *)
(* Var / Vartab                                                        *)
(* ------------------------------------------------------------------ *)

let test_var_display () =
  let vt = Vartab.create () in
  let x = Vartab.intern vt ~kind:Var.Global ~name:"x" () in
  let a2 = Vartab.intern vt ~kind:(Var.Arg 2) ~name:"f" () in
  let r = Vartab.intern vt ~kind:Var.Ret ~name:"f" () in
  check str "plain" "x" (Var.display x);
  check str "arg" "f@2" (Var.display a2);
  check str "ret" "f@ret" (Var.display r)

let test_vartab_interning () =
  let vt = Vartab.create () in
  let a = Vartab.intern vt ~kind:Var.Global ~name:"x" () in
  let b = Vartab.intern vt ~kind:Var.Global ~name:"x" () in
  check bool "same object" true (Var.equal a b);
  let c = Vartab.intern vt ~kind:Var.Field ~name:"x" () in
  check bool "field x is distinct from global x" false (Var.equal a c);
  check int "two variables interned" 2 (Vartab.size vt)

let test_vartab_scopes () =
  let vt = Vartab.create () in
  let f_x = Vartab.intern vt ~kind:Var.Filelocal ~scope:"f" ~name:"x" () in
  let g_x = Vartab.intern vt ~kind:Var.Filelocal ~scope:"g" ~name:"x" () in
  check bool "locals of different functions differ" false (Var.equal f_x g_x);
  let f_x' = Vartab.intern vt ~kind:Var.Filelocal ~scope:"f" ~name:"x" () in
  check bool "same scope same name" true (Var.equal f_x f_x')

let test_vartab_temps () =
  let vt = Vartab.create () in
  let t1 = Vartab.fresh_temp vt in
  let t2 = Vartab.fresh_temp vt in
  check bool "temps always fresh" false (Var.equal t1 t2);
  check bool "temps are intern" true (Var.linkage t1 = Var.Intern)

let test_vartab_default_linkage () =
  let vt = Vartab.create () in
  let g = Vartab.intern vt ~kind:Var.Global ~name:"g" () in
  let f = Vartab.intern vt ~kind:Var.Field ~name:"S.f" () in
  let h = Vartab.intern vt ~kind:Var.Heap ~name:"h" () in
  let l = Vartab.intern vt ~kind:Var.Filelocal ~name:"l" () in
  check bool "globals extern" true (Var.linkage g = Var.Extern);
  check bool "fields extern" true (Var.linkage f = Var.Extern);
  check bool "heap intern" true (Var.linkage h = Var.Intern);
  check bool "locals intern" true (Var.linkage l = Var.Intern)

let test_vartab_to_array () =
  let vt = Vartab.create () in
  let a = Vartab.intern vt ~kind:Var.Global ~name:"a" () in
  let b = Vartab.intern vt ~kind:Var.Global ~name:"b" () in
  let arr = Vartab.to_array vt in
  check int "array size" 2 (Array.length arr);
  check bool "order by uid" true (Var.equal arr.(0) a && Var.equal arr.(1) b)

(* ------------------------------------------------------------------ *)
(* Prim                                                                *)
(* ------------------------------------------------------------------ *)

let mk_vars () =
  let vt = Vartab.create () in
  let x = Vartab.intern vt ~kind:Var.Global ~name:"x" () in
  let y = Vartab.intern vt ~kind:Var.Global ~name:"y" () in
  (x, y)

let test_prim_pp () =
  let x, y = mk_vars () in
  let loc = Loc.none in
  check str "copy" "x = y" (Prim.to_string (Prim.copy ~loc x y));
  check str "addr" "x = &y" (Prim.to_string (Prim.addr ~loc x y));
  check str "store" "*x = y" (Prim.to_string (Prim.store ~loc x y));
  check str "load" "x = *y" (Prim.to_string (Prim.load ~loc x y));
  check str "deref2" "*x = *y" (Prim.to_string (Prim.deref2 ~loc x y));
  check str "op copy" "x =[+] y"
    (Prim.to_string (Prim.copy ?op:(Prim.opinfo "+" Strength.Arg1) ~loc x y))

let test_prim_strength () =
  let x, y = mk_vars () in
  let loc = Loc.none in
  check st "plain copy strong" Strength.Strong (Prim.strength (Prim.copy ~loc x y));
  check st "store strong" Strength.Strong (Prim.strength (Prim.store ~loc x y));
  check st "shift weak" Strength.Weak
    (Prim.strength (Prim.copy ?op:(Prim.opinfo ">>" Strength.Arg1) ~loc x y));
  check st "bang none" Strength.None_
    (Prim.strength (Prim.copy ?op:(Prim.opinfo "!" Strength.Arg1) ~loc x y))

let test_prim_counts () =
  let x, y = mk_vars () in
  let loc = Loc.none in
  let l =
    [
      Prim.copy ~loc x y; Prim.copy ~loc y x; Prim.addr ~loc x y;
      Prim.store ~loc x y; Prim.load ~loc x y; Prim.deref2 ~loc x y;
    ]
  in
  let c = Prim.count_list l in
  check int "copies" 2 c.Prim.n_copy;
  check int "addrs" 1 c.Prim.n_addr;
  check int "stores" 1 c.Prim.n_store;
  check int "loads" 1 c.Prim.n_load;
  check int "deref2s" 1 c.Prim.n_deref2;
  check int "total" 6 (Prim.total c);
  let c2 = Prim.add_counts c c in
  check int "add_counts total" 12 (Prim.total c2)

let () =
  Alcotest.run "ir"
    [
      ( "loc",
        [
          Alcotest.test_case "pp" `Quick test_loc_pp;
          Alcotest.test_case "compare" `Quick test_loc_compare;
        ] );
      ( "strength",
        [
          Alcotest.test_case "table1 strong ops" `Quick test_table1_strong;
          Alcotest.test_case "table1 multiply" `Quick test_table1_mul;
          Alcotest.test_case "table1 shift and mod" `Quick test_table1_shift_mod;
          Alcotest.test_case "table1 unary" `Quick test_table1_unary;
          Alcotest.test_case "table1 logical" `Quick test_table1_logical;
          Alcotest.test_case "ordering" `Quick test_strength_order;
          Alcotest.test_case "comparisons sever" `Quick test_comparisons_sever;
        ] );
      ( "var",
        [
          Alcotest.test_case "display names" `Quick test_var_display;
          Alcotest.test_case "interning" `Quick test_vartab_interning;
          Alcotest.test_case "scopes" `Quick test_vartab_scopes;
          Alcotest.test_case "temps" `Quick test_vartab_temps;
          Alcotest.test_case "default linkage" `Quick test_vartab_default_linkage;
          Alcotest.test_case "to_array" `Quick test_vartab_to_array;
        ] );
      ( "prim",
        [
          Alcotest.test_case "printing" `Quick test_prim_pp;
          Alcotest.test_case "strength" `Quick test_prim_strength;
          Alcotest.test_case "counts" `Quick test_prim_counts;
        ] );
    ]
