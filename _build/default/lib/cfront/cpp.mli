(** Mini C preprocessor.

    The paper's compile phase consumes unpreprocessed source; this covers
    the cpp subset real code and the synthetic workloads exercise:
    object- and function-like macros with [#] stringize and [##] paste and
    [__VA_ARGS__], [#include] with search paths and an in-memory virtual
    filesystem for tests, the full conditional family with a constant
    expression evaluator, [#undef], [#error], and comment handling.

    Output is plain text with GNU-style [# <line> "<file>"] markers which
    {!Clexer} interprets, so downstream locations refer to original
    files.  Missing [<system>] headers expand to nothing (the sealed
    environment has none and the analysis only needs assignment
    structure); missing ["local"] headers are errors. *)

exception Cpp_error of string * string * int
(** (message, file, line) *)

(** Preprocess [content] as if it were file [file]. *)
val preprocess_string :
  ?include_dirs:string list ->
  ?virtual_fs:(string * string) list ->
  ?defines:(string * string) list ->
  file:string ->
  string ->
  string

(** Preprocess a file from disk. *)
val preprocess_file :
  ?include_dirs:string list ->
  ?virtual_fs:(string * string) list ->
  ?defines:(string * string) list ->
  string ->
  string
