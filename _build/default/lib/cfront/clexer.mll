{
(* C lexer.  Consumes preprocessed text; understands the GNU-style line
   markers [# <line> "<file>"] that the mini preprocessor (Cpp) emits, so
   tokens carry their original source locations. *)

open Ctoken

exception Error of string * Lexing.position

let kw = Hashtbl.create 64
let () = List.iter (fun (k, v) -> Hashtbl.replace kw k v) keyword_table

let ident s = match Hashtbl.find_opt kw s with Some t -> t | None -> IDENT s

let newline lexbuf =
  let p = lexbuf.Lexing.lex_curr_p in
  lexbuf.Lexing.lex_curr_p <-
    { p with pos_lnum = p.pos_lnum + 1; pos_bol = p.pos_cnum }

(* Set position from a "# line file" marker. *)
let set_position lexbuf line file =
  let p = lexbuf.Lexing.lex_curr_p in
  lexbuf.Lexing.lex_curr_p <-
    { p with pos_fname = file; pos_lnum = line; pos_bol = p.pos_cnum }

let int_of_spelling s =
  (* strip suffixes u/U/l/L *)
  let e = ref (String.length s) in
  while !e > 0 && (match s.[!e - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false) do
    decr e
  done;
  let body = String.sub s 0 !e in
  try Int64.of_string body with _ -> 0L

let char_of_escape = function
  | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | 'b' -> 8 | 'f' -> 12
  | 'v' -> 11 | 'a' -> 7 | '0' -> 0 | '\\' -> 92 | '\'' -> 39
  | '"' -> 34 | '?' -> 63 | c -> Char.code c
}

let digit = ['0'-'9']
let hexdigit = ['0'-'9' 'a'-'f' 'A'-'F']
let letter = ['a'-'z' 'A'-'Z' '_']
let intsuffix = ['u' 'U' 'l' 'L']*
let exponent = ['e' 'E'] ['+' '-']? digit+

rule token = parse
  | [' ' '\t' '\r']+        { token lexbuf }
  | '\n'                    { newline lexbuf; token lexbuf }
  | "//" [^ '\n']*          { token lexbuf }
  | "/*"                    { comment lexbuf; token lexbuf }
  | '#' [' ' '\t']* (digit+ as line) [' ' '\t']* '"' ([^ '"']* as file) '"' [^ '\n']* '\n'
      { set_position lexbuf (int_of_string line) file; token lexbuf }
  | '#' [^ '\n']* '\n'      { newline lexbuf; token lexbuf }
      (* stray directives (e.g. #pragma surviving cpp) are skipped *)
  | letter (letter | digit)* as s { ident s }
  | "0" ['x' 'X'] hexdigit+ intsuffix as s { INTLIT (int_of_spelling s, s) }
  | digit+ intsuffix as s   { INTLIT (int_of_spelling s, s) }
  | digit+ '.' digit* exponent? ['f' 'F' 'l' 'L']? as s { FLOATLIT s }
  | '.' digit+ exponent? ['f' 'F' 'l' 'L']? as s        { FLOATLIT s }
  | digit+ exponent ['f' 'F' 'l' 'L']? as s             { FLOATLIT s }
  | "'" ([^ '\\' '\''] as c) "'"      { CHARLIT (Char.code c) }
  | "'\\" (_ as c) "'"                { CHARLIT (char_of_escape c) }
  | "'\\" (['0'-'7']+ as o) "'"       { CHARLIT (int_of_string ("0o" ^ o) land 255) }
  | "'\\x" (hexdigit+ as h) "'"       { CHARLIT (int_of_string ("0x" ^ h) land 255) }
  | '"'                     { let b = Buffer.create 16 in string_body b lexbuf }
  | "..."  { ELLIPSIS }
  | "<<=" { LTLTEQ } | ">>=" { GTGTEQ }
  | "->" { ARROW } | "++" { PLUSPLUS } | "--" { MINUSMINUS }
  | "<<" { LTLT } | ">>" { GTGT } | "<=" { LE } | ">=" { GE }
  | "==" { EQEQ } | "!=" { BANGEQ } | "&&" { AMPAMP } | "||" { BARBAR }
  | "+=" { PLUSEQ } | "-=" { MINUSEQ } | "*=" { STAREQ } | "/=" { SLASHEQ }
  | "%=" { PERCENTEQ } | "&=" { AMPEQ } | "^=" { CARETEQ } | "|=" { BAREQ }
  | '(' { LPAREN } | ')' { RPAREN } | '[' { LBRACKET } | ']' { RBRACKET }
  | '{' { LBRACE } | '}' { RBRACE } | ';' { SEMI } | ',' { COMMA }
  | ':' { COLON } | '?' { QUESTION } | '.' { DOT }
  | '&' { AMP } | '*' { STAR } | '+' { PLUS } | '-' { MINUS }
  | '~' { TILDE } | '!' { BANG } | '/' { SLASH } | '%' { PERCENT }
  | '<' { LT } | '>' { GT } | '^' { CARET } | '|' { BAR } | '=' { EQ }
  | eof { EOF }
  | _ as c
      { raise (Error (Fmt.str "unexpected character %C" c, lexbuf.Lexing.lex_curr_p)) }

and comment = parse
  | "*/" { () }
  | '\n' { newline lexbuf; comment lexbuf }
  | eof  { raise (Error ("unterminated comment", lexbuf.Lexing.lex_curr_p)) }
  | _    { comment lexbuf }

and string_body b = parse
  | '"'  { STRLIT (Buffer.contents b) }
  | "\\" (_ as c) { Buffer.add_char b (Char.chr (char_of_escape c)); string_body b lexbuf }
  | '\n' { newline lexbuf; Buffer.add_char b '\n'; string_body b lexbuf }
  | eof  { raise (Error ("unterminated string", lexbuf.Lexing.lex_curr_p)) }
  | _ as c { Buffer.add_char b c; string_body b lexbuf }

{
(* Convenience: lex a whole string to a token list (used by tests). *)
let tokens_of_string ?(file = "<string>") s =
  let lexbuf = Lexing.from_string s in
  Lexing.set_filename lexbuf file;
  let rec go acc =
    match token lexbuf with
    | EOF -> List.rev (EOF :: acc)
    | t -> go (t :: acc)
  in
  go []
}
