(** Abstract syntax for the C subset the frontend accepts.

    The subset is chosen to cover what a flow-insensitive,
    assignment-oriented analysis needs from real C: full declarations with
    typedefs, struct/union/enum definitions (including nested and
    anonymous), the complete expression grammar, and all statement forms
    (whose control structure the analysis ignores — only the expressions
    inside matter). *)

open Cla_ir

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type typ =
  | Tvoid
  | Tint of string  (** any integer type, by its canonical spelling *)
  | Tfloat of string  (** float / double / long double *)
  | Tptr of typ
  | Tarray of typ * expr option  (** element type, optional size expr *)
  | Tfun of typ * param list * bool  (** return, params, is_variadic *)
  | Tnamed of string  (** typedef name (resolved via the parser's table) *)
  | Tcomp of bool * string  (** [is_union], tag (synthesized if anonymous) *)
  | Tenum of string

and param = { pname : string option; ptyp : typ }

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Eident of string
  | Eint of int64 * string
  | Efloat of string
  | Echar of int
  | Estring of string
  | Eunop of string * expr
      (** ["u-"], ["u+"], ["!"], ["~"], ["++pre"], ["--pre"], ["++post"],
          ["--post"] *)
  | Ederef of expr  (** [*e] *)
  | Eaddrof of expr  (** [&e] *)
  | Ebinop of string * expr * expr
  | Eassign of string option * expr * expr
      (** [e1 = e2] when [None]; [e1 op= e2] when [Some op] *)
  | Econd of expr * expr * expr
  | Ecall of expr * expr list
  | Emember of expr * string  (** [e.f] *)
  | Earrow of expr * string  (** [e->f] *)
  | Eindex of expr * expr  (** [e1\[e2\]] *)
  | Ecast of typ * expr
  | Esizeof_expr of expr
  | Esizeof_typ of typ
  | Ecomma of expr * expr
  | Ecompound of typ * init  (** C99 compound literal [(T){...}] *)

(* ------------------------------------------------------------------ *)
(* Declarations and statements                                         *)
(* ------------------------------------------------------------------ *)

and storage = Sauto | Sstatic | Sextern | Stypedef | Sregister

and init =
  | Iexpr of expr
  | Ilist of (string option * init) list
      (** elements with an optional [.field] designator; array designators
          are dropped (the analysis is index-independent anyway) *)

and decl = {
  dname : string;
  dtyp : typ;
  dstorage : storage;
  dinit : init option;
  dloc : Loc.t;
}

and stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sexpr of expr
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of forinit option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sswitch of expr * stmt
  | Scase of expr * stmt
  | Sdefault of stmt
  | Slabel of string * stmt
  | Sgoto of string
  | Sdecl of decl list
  | Snull

and forinit = Fexpr of expr | Fdecl of decl list

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(** Definition of a struct or union collected during parsing.  Anonymous
    composites receive synthesized tags ["$anon<n>"], so every field access
    can be attributed to a unique composite type (the paper's field-based
    mode requires "the same field of the same struct type", Section 2). *)
type compdef = {
  ctag : string;
  cunion : bool;
  cfields : (string * typ) list;
  cloc : Loc.t;
}

type fundef = {
  fname : string;
  freturn : typ;
  fparams : param list;
  fvariadic : bool;
  fstorage : storage;
  fbody : stmt list;
  floc : Loc.t;
}

type top = Tdecl of decl list | Tfundef of fundef

(** A parsed translation unit: top-level items in source order plus the
    composite and enum definitions encountered anywhere in the unit. *)
type tunit = {
  file : string;
  tops : top list;
  comps : compdef list;
  enums : (string * (string * int64 option) list) list;
}

(* ------------------------------------------------------------------ *)
(* Printing (used by error messages, tests and the dump tool)          *)
(* ------------------------------------------------------------------ *)

let rec pp_typ ppf = function
  | Tvoid -> Fmt.string ppf "void"
  | Tint s | Tfloat s -> Fmt.string ppf s
  | Tptr t -> Fmt.pf ppf "%a*" pp_typ t
  | Tarray (t, _) -> Fmt.pf ppf "%a[]" pp_typ t
  | Tfun (r, ps, va) ->
      Fmt.pf ppf "%a(%a%s)" pp_typ r
        (Fmt.list ~sep:(Fmt.any ",") (fun ppf p -> pp_typ ppf p.ptyp))
        ps
        (if va then ",..." else "")
  | Tnamed n -> Fmt.string ppf n
  | Tcomp (false, tag) -> Fmt.pf ppf "struct %s" tag
  | Tcomp (true, tag) -> Fmt.pf ppf "union %s" tag
  | Tenum tag -> Fmt.pf ppf "enum %s" tag

let typ_to_string t = Fmt.str "%a" pp_typ t

let rec pp_expr ppf e =
  match e.edesc with
  | Eident x -> Fmt.string ppf x
  | Eint (_, s) -> Fmt.string ppf s
  | Efloat s -> Fmt.string ppf s
  | Echar c -> Fmt.pf ppf "'\\%03d'" c
  | Estring s -> Fmt.pf ppf "%S" s
  | Eunop (("++post" | "--post") as op, e1) ->
      Fmt.pf ppf "(%a)%s" pp_expr e1 (String.sub op 0 2)
  | Eunop (op, e1) ->
      let op = if op = "u-" then "-" else if op = "u+" then "+" else op in
      let op = if op = "++pre" then "++" else if op = "--pre" then "--" else op in
      Fmt.pf ppf "%s(%a)" op pp_expr e1
  | Ederef e1 -> Fmt.pf ppf "*(%a)" pp_expr e1
  | Eaddrof e1 -> Fmt.pf ppf "&(%a)" pp_expr e1
  | Ebinop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a op pp_expr b
  | Eassign (None, a, b) -> Fmt.pf ppf "%a = %a" pp_expr a pp_expr b
  | Eassign (Some op, a, b) -> Fmt.pf ppf "%a %s= %a" pp_expr a op pp_expr b
  | Econd (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Ecall (f, args) ->
      (* parenthesize the callee: postfix application binds tighter than
         the prefix operators a callee expression may contain *)
      Fmt.pf ppf "(%a)(%a)" pp_expr f
        (Fmt.list ~sep:(Fmt.any ", ") pp_expr)
        args
  | Emember (e1, f) -> Fmt.pf ppf "(%a).%s" pp_expr e1 f
  | Earrow (e1, f) -> Fmt.pf ppf "(%a)->%s" pp_expr e1 f
  | Eindex (a, i) -> Fmt.pf ppf "(%a)[%a]" pp_expr a pp_expr i
  | Ecast (t, e1) -> Fmt.pf ppf "(%a)(%a)" pp_typ t pp_expr e1
  | Esizeof_expr e1 -> Fmt.pf ppf "sizeof(%a)" pp_expr e1
  | Esizeof_typ t -> Fmt.pf ppf "sizeof(%a)" pp_typ t
  | Ecomma (a, b) -> Fmt.pf ppf "(%a, %a)" pp_expr a pp_expr b
  | Ecompound (t, _) -> Fmt.pf ppf "(%a){...}" pp_typ t

let expr_to_string e = Fmt.str "%a" pp_expr e

let mk_expr ?(loc = Loc.none) edesc = { edesc; eloc = loc }
let mk_stmt ?(loc = Loc.none) sdesc = { sdesc; sloc = loc }
