(** Tokens produced by the C lexer.

    Typedef names are not distinguished here: the lexer returns [IDENT] and
    the (context-sensitive) parser consults its typedef table, the standard
    way to handle C's declaration/expression ambiguity in recursive
    descent. *)

type t =
  | IDENT of string
  | INTLIT of int64 * string  (** value (best effort) and original spelling *)
  | FLOATLIT of string
  | CHARLIT of int
  | STRLIT of string
  (* keywords *)
  | KW_AUTO | KW_BREAK | KW_CASE | KW_CHAR | KW_CONST | KW_CONTINUE
  | KW_DEFAULT | KW_DO | KW_DOUBLE | KW_ELSE | KW_ENUM | KW_EXTERN
  | KW_FLOAT | KW_FOR | KW_GOTO | KW_IF | KW_INLINE | KW_INT | KW_LONG
  | KW_REGISTER | KW_RETURN | KW_SHORT | KW_SIGNED | KW_SIZEOF | KW_STATIC
  | KW_STRUCT | KW_SWITCH | KW_TYPEDEF | KW_UNION | KW_UNSIGNED | KW_VOID
  | KW_VOLATILE | KW_WHILE
  (* punctuation *)
  | LPAREN | RPAREN | LBRACKET | RBRACKET | LBRACE | RBRACE
  | SEMI | COMMA | COLON | QUESTION | ELLIPSIS
  | DOT | ARROW
  | PLUSPLUS | MINUSMINUS
  | AMP | STAR | PLUS | MINUS | TILDE | BANG
  | SLASH | PERCENT | LTLT | GTGT | LT | GT | LE | GE | EQEQ | BANGEQ
  | CARET | BAR | AMPAMP | BARBAR
  | EQ | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | LTLTEQ | GTGTEQ | AMPEQ | CARETEQ | BAREQ
  | EOF

let keyword_table : (string * t) list =
  [
    ("auto", KW_AUTO); ("break", KW_BREAK); ("case", KW_CASE);
    ("char", KW_CHAR); ("const", KW_CONST); ("continue", KW_CONTINUE);
    ("default", KW_DEFAULT); ("do", KW_DO); ("double", KW_DOUBLE);
    ("else", KW_ELSE); ("enum", KW_ENUM); ("extern", KW_EXTERN);
    ("float", KW_FLOAT); ("for", KW_FOR); ("goto", KW_GOTO); ("if", KW_IF);
    ("inline", KW_INLINE); ("__inline", KW_INLINE); ("__inline__", KW_INLINE);
    ("int", KW_INT); ("long", KW_LONG); ("register", KW_REGISTER);
    ("return", KW_RETURN); ("short", KW_SHORT); ("signed", KW_SIGNED);
    ("__signed__", KW_SIGNED); ("sizeof", KW_SIZEOF); ("static", KW_STATIC);
    ("struct", KW_STRUCT); ("switch", KW_SWITCH); ("typedef", KW_TYPEDEF);
    ("union", KW_UNION); ("unsigned", KW_UNSIGNED); ("void", KW_VOID);
    ("volatile", KW_VOLATILE); ("__volatile__", KW_VOLATILE);
    ("while", KW_WHILE); ("__const", KW_CONST); ("__const__", KW_CONST);
  ]

let to_string = function
  | IDENT s -> s
  | INTLIT (_, s) -> s
  | FLOATLIT s -> s
  | CHARLIT c -> Fmt.str "'\\%03d'" c
  | STRLIT s -> Fmt.str "%S" s
  | KW_AUTO -> "auto" | KW_BREAK -> "break" | KW_CASE -> "case"
  | KW_CHAR -> "char" | KW_CONST -> "const" | KW_CONTINUE -> "continue"
  | KW_DEFAULT -> "default" | KW_DO -> "do" | KW_DOUBLE -> "double"
  | KW_ELSE -> "else" | KW_ENUM -> "enum" | KW_EXTERN -> "extern"
  | KW_FLOAT -> "float" | KW_FOR -> "for" | KW_GOTO -> "goto"
  | KW_IF -> "if" | KW_INLINE -> "inline" | KW_INT -> "int"
  | KW_LONG -> "long" | KW_REGISTER -> "register" | KW_RETURN -> "return"
  | KW_SHORT -> "short" | KW_SIGNED -> "signed" | KW_SIZEOF -> "sizeof"
  | KW_STATIC -> "static" | KW_STRUCT -> "struct" | KW_SWITCH -> "switch"
  | KW_TYPEDEF -> "typedef" | KW_UNION -> "union" | KW_UNSIGNED -> "unsigned"
  | KW_VOID -> "void" | KW_VOLATILE -> "volatile" | KW_WHILE -> "while"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACKET -> "[" | RBRACKET -> "]"
  | LBRACE -> "{" | RBRACE -> "}" | SEMI -> ";" | COMMA -> ","
  | COLON -> ":" | QUESTION -> "?" | ELLIPSIS -> "..."
  | DOT -> "." | ARROW -> "->" | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | AMP -> "&" | STAR -> "*" | PLUS -> "+" | MINUS -> "-" | TILDE -> "~"
  | BANG -> "!" | SLASH -> "/" | PERCENT -> "%" | LTLT -> "<<"
  | GTGT -> ">>" | LT -> "<" | GT -> ">" | LE -> "<=" | GE -> ">="
  | EQEQ -> "==" | BANGEQ -> "!=" | CARET -> "^" | BAR -> "|"
  | AMPAMP -> "&&" | BARBAR -> "||" | EQ -> "=" | PLUSEQ -> "+="
  | MINUSEQ -> "-=" | STAREQ -> "*=" | SLASHEQ -> "/=" | PERCENTEQ -> "%="
  | LTLTEQ -> "<<=" | GTGTEQ -> ">>=" | AMPEQ -> "&=" | CARETEQ -> "^="
  | BAREQ -> "|=" | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b
