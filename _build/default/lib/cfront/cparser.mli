(** Typedef-aware recursive-descent parser for the C subset of {!Cast}.

    C's grammar is context-sensitive ([x * y;] is a declaration iff [x]
    names a type), so the parser keeps a scope stack recording whether
    each visible identifier currently names a typedef or an object.
    Accepts preprocessed text with the GNU-style line markers {!Cpp}
    emits, so AST locations refer to original files. *)

exception Parse_error of string * Cla_ir.Loc.t

(** The parsed unit plus the typedef environment (the normalizer resolves
    {!Cast.Tnamed} through it). *)
type result = {
  tunit : Cast.tunit;
  typedefs : (string, Cast.typ) Hashtbl.t;
}

val parse_string : ?file:string -> string -> result
