lib/cfront/frontend.mli: Cla_ir Normalize Prog
