lib/cfront/clexer.ml: Array Buffer Char Ctoken Fmt Hashtbl Int64 Lexing List String
