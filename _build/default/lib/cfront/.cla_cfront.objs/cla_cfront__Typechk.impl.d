lib/cfront/typechk.ml: Cast Hashtbl List Option
