lib/cfront/normalize.ml: Cast Cla_ir Cparser Filename Fmt Hashtbl Int64 List Loc Option Prim Prog Strength Typechk Var Vartab
