lib/cfront/typechk.mli: Cast Hashtbl
