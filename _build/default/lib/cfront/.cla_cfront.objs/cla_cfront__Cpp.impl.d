lib/cfront/cpp.ml: Buffer Char Filename Fmt Hashtbl Int64 List Set String Sys
