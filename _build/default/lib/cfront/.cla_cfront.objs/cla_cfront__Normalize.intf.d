lib/cfront/normalize.mli: Cla_ir Cparser Prog
