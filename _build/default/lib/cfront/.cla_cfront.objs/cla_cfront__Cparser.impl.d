lib/cfront/cparser.ml: Array Buffer Cast Cla_ir Clexer Ctoken Filename Fmt Hashtbl Lexing List Loc String
