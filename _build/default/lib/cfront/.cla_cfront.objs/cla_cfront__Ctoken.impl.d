lib/cfront/ctoken.ml: Fmt
