lib/cfront/cpp.mli:
