lib/cfront/cast.ml: Cla_ir Fmt Loc String
