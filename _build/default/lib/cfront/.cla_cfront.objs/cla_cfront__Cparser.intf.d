lib/cfront/cparser.mli: Cast Cla_ir Hashtbl
