lib/cfront/frontend.ml: Cla_ir Cparser Cpp Normalize Prog
