(* Mini C preprocessor.

   The paper's compile phase consumes unpreprocessed source (Table 2 counts
   source lines before preprocessing) and runs it through cpp before ckit
   parses it.  The container is sealed, so we implement the subset of cpp
   that real code bases and our synthetic workloads exercise: object- and
   function-like macros (with # stringize and ## paste), #include with
   search paths and a virtual filesystem for tests, the full conditional
   family (#if/#ifdef/#ifndef/#elif/#else/#endif) with a constant-expression
   evaluator, #undef, #error, and #pragma/#line pass-through.

   Output is plain text with GNU-style [# <line> "<file>"] markers that
   Clexer interprets, so downstream locations refer to original files. *)

exception Cpp_error of string * string * int (* message, file, line *)

let error file line fmt = Fmt.kstr (fun m -> raise (Cpp_error (m, file, line))) fmt

(* ------------------------------------------------------------------ *)
(* Preprocessing tokens: a deliberately small token language.          *)
(* ------------------------------------------------------------------ *)

type ptok =
  | Id of string
  | Num of string
  | Str of string  (* with quotes, verbatim *)
  | Ch of string  (* with quotes, verbatim *)
  | Punct of string
  | Ws  (* any run of whitespace *)

let ptok_text = function
  | Id s | Num s | Str s | Ch s | Punct s -> s
  | Ws -> " "

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Scan one logical line into ptoks.  Comments were removed earlier. *)
let scan_line ~file ~line s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then begin
      while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\r') do incr i done;
      push Ws
    end
    else if is_id_start c then begin
      let j = ref !i in
      while !j < n && is_id_char s.[!j] do incr j done;
      push (Id (String.sub s !i (!j - !i)));
      i := !j
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      (* pp-number: digits, letters, dots, exponent signs *)
      let j = ref !i in
      while
        !j < n
        && (is_id_char s.[!j] || s.[!j] = '.'
           || ((s.[!j] = '+' || s.[!j] = '-')
              && !j > !i
              && (match s.[!j - 1] with 'e' | 'E' | 'p' | 'P' -> true | _ -> false)))
      do
        incr j
      done;
      push (Num (String.sub s !i (!j - !i)));
      i := !j
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> quote do
        if s.[!j] = '\\' && !j + 1 < n then j := !j + 2 else incr j
      done;
      if !j >= n then error file line "unterminated %s literal"
          (if quote = '"' then "string" else "character");
      let lit = String.sub s !i (!j - !i + 1) in
      push (if quote = '"' then Str lit else Ch lit);
      i := !j + 1
    end
    else begin
      (* longest-match punctuation *)
      let try3 =
        if !i + 2 < n then
          match String.sub s !i 3 with
          | ("..." | "<<=" | ">>=") as p -> Some p
          | _ -> None
        else None
      in
      let try2 =
        if !i + 1 < n then
          match String.sub s !i 2 with
          | ( "##" | "->" | "++" | "--" | "<<" | ">>" | "<=" | ">=" | "=="
            | "!=" | "&&" | "||" | "+=" | "-=" | "*=" | "/=" | "%=" | "&="
            | "^=" | "|=" ) as p ->
              Some p
          | _ -> None
        else None
      in
      match try3 with
      | Some p -> push (Punct p); i := !i + 3
      | None -> (
          match try2 with
          | Some p -> push (Punct p); i := !i + 2
          | None ->
              push (Punct (String.make 1 c));
              incr i)
    end
  done;
  List.rev !toks

let render toks = String.concat "" (List.map ptok_text toks)

(* ------------------------------------------------------------------ *)
(* Macro table                                                         *)
(* ------------------------------------------------------------------ *)

type macro =
  | Obj of ptok list
  | Fn of string list * bool * ptok list  (* params, is_variadic, body *)

type source = Disk of string list (* include dirs *) | Virtual of (string * string) list

type t = {
  defines : (string, macro) Hashtbl.t;
  mutable sources : source list;  (* search order *)
  mutable included : string list;  (* stack, for cycle detection *)
  out : Buffer.t;
  mutable out_file : string;  (* current marker state *)
  mutable out_line : int;
  mutable max_depth : int;
}

let create ?(include_dirs = []) ?(virtual_fs = []) ?(defines = []) () =
  let t =
    {
      defines = Hashtbl.create 64;
      sources = [ Virtual virtual_fs; Disk include_dirs ];
      included = [];
      out = Buffer.create 4096;
      out_file = "";
      out_line = 0;
      max_depth = 200;
    }
  in
  Hashtbl.replace t.defines "__CLA__" (Obj [ Num "1" ]);
  Hashtbl.replace t.defines "__STDC__" (Obj [ Num "1" ]);
  List.iter
    (fun (name, body) ->
      Hashtbl.replace t.defines name
        (Obj (scan_line ~file:"<cmdline>" ~line:0 body)))
    defines;
  t

let is_defined t name = Hashtbl.mem t.defines name

(* ------------------------------------------------------------------ *)
(* Macro expansion with a no-recursion name set                        *)
(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)

let drop_ws = List.filter (fun x -> x <> Ws)

(* Split the token list of a macro argument list "(a, b, ...)" that starts
   after the opening paren.  Returns (args, rest-after-close).  Commas
   inside nested parens/brackets do not split. *)
let trim_ws l =
  let rec front = function Ws :: tl -> front tl | l -> l in
  front (List.rev (front (List.rev l)))

let split_args ~file ~line toks =
  let rec go depth cur args = function
    | [] -> error file line "unterminated macro argument list"
    | Punct "(" :: tl -> go (depth + 1) (Punct "(" :: cur) args tl
    | Punct ")" :: tl ->
        if depth = 0 then
          (List.rev (List.map trim_ws (List.rev cur :: args)), tl)
        else go (depth - 1) (Punct ")" :: cur) args tl
    | Punct "," :: tl when depth = 0 -> go depth [] (List.rev cur :: args) tl
    | hd :: tl -> go depth (hd :: cur) args tl
  in
  go 0 [] [] toks

let stringize arg =
  let body = String.trim (render arg) in
  let b = Buffer.create (String.length body + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char b '\\';
      Buffer.add_char b c)
    body;
  Buffer.add_char b '"';
  Str (Buffer.contents b)

(* Token paste: textual concatenation re-scanned. *)
let paste ~file ~line a b =
  let text = String.trim (render a) ^ String.trim (render b) in
  scan_line ~file ~line text

let rec expand t ~file ~line ~hide toks =
  match toks with
  | [] -> []
  | Ws :: tl -> Ws :: expand t ~file ~line ~hide tl
  | Id name :: tl when (not (Sset.mem name hide)) && Hashtbl.mem t.defines name -> (
      match Hashtbl.find t.defines name with
      | Obj body ->
          let body' = subst_hash t ~file ~line body [] [] in
          let expanded = expand t ~file ~line ~hide:(Sset.add name hide) body' in
          expanded @ expand t ~file ~line ~hide tl
      | Fn (params, variadic, body) -> (
          (* only a call-looking use expands *)
          let rec after_ws = function Ws :: l -> after_ws l | l -> l in
          match after_ws tl with
          | Punct "(" :: rest ->
              let args, rest' = split_args ~file ~line rest in
              let args =
                (* f() with one empty arg = zero args when params = [] *)
                match (args, params) with
                | [ [] ], [] -> []
                | _ -> args
              in
              let nparams = List.length params in
              let args =
                if variadic && List.length args > nparams then
                  (* collapse extra args into the last (__VA_ARGS__) slot *)
                  let fixed = ref [] and rest_args = ref [] in
                  List.iteri
                    (fun i a ->
                      if i < nparams - 1 then fixed := a :: !fixed
                      else rest_args := a :: !rest_args)
                    args;
                  let va =
                    List.concat
                      (List.mapi
                         (fun i a -> if i = 0 then a else (Punct "," :: a))
                         (List.rev !rest_args))
                  in
                  List.rev (va :: !fixed)
                else args
              in
              if List.length args <> nparams && not variadic then
                error file line "macro %s expects %d arguments, got %d" name
                  nparams (List.length args);
              let expanded_args =
                List.map (fun a -> expand t ~file ~line ~hide a) args
              in
              let body' = subst_hash t ~file ~line body params args in
              let body'' = subst_params body' params expanded_args in
              let expanded =
                expand t ~file ~line ~hide:(Sset.add name hide) body''
              in
              expanded @ expand t ~file ~line ~hide rest'
          | _ -> Id name :: expand t ~file ~line ~hide tl))
  | hd :: tl -> hd :: expand t ~file ~line ~hide tl

(* First pass over a macro body: handle # and ## using the *unexpanded*
   argument tokens, per the standard. *)
and subst_hash t ~file ~line body params args =
  let arg_of p =
    let rec find ps as_ =
      match (ps, as_) with
      | p' :: _, a :: _ when p' = p -> Some a
      | _ :: ps', _ :: as_' -> find ps' as_'
      | _ -> None
    in
    find params args
  in
  let rec go = function
    | [] -> []
    | Punct "#" :: rest -> (
        let rec skip_ws = function Ws :: l -> skip_ws l | l -> l in
        match skip_ws rest with
        | Id p :: tl when arg_of p <> None -> (
            match arg_of p with
            | Some a -> stringize a :: go tl
            | None -> assert false)
        | _ -> Punct "#" :: go rest)
    | a :: Ws :: Punct "##" :: tl -> go (a :: Punct "##" :: tl)
    | a :: Punct "##" :: Ws :: tl -> go (a :: Punct "##" :: tl)
    | a :: Punct "##" :: b :: tl ->
        let resolve x =
          match x with
          | Id p -> ( match arg_of p with Some arg -> drop_ws arg | None -> [ x ])
          | _ -> [ x ]
        in
        let pasted = paste ~file ~line (resolve a) (resolve b) in
        go (pasted @ tl)
    | hd :: tl -> hd :: go tl
  in
  ignore t;
  go body

(* Second pass: ordinary parameter substitution with pre-expanded args. *)
and subst_params body params expanded_args =
  let tbl = Hashtbl.create 8 in
  List.iter2 (fun p a -> Hashtbl.replace tbl p a) params expanded_args;
  List.concat_map
    (function
      | Id p when Hashtbl.mem tbl p -> Hashtbl.find tbl p
      | tok -> [ tok ])
    body

(* ------------------------------------------------------------------ *)
(* #if constant expressions                                            *)
(* ------------------------------------------------------------------ *)

(* Replace defined(X) / defined X before macro expansion. *)
let replace_defined t toks =
  let rec go = function
    | [] -> []
    | Id "defined" :: tl -> (
        let rec skip_ws = function Ws :: l -> skip_ws l | l -> l in
        match skip_ws tl with
        | Punct "(" :: tl' -> (
            match skip_ws tl' with
            | Id name :: tl'' -> (
                match skip_ws tl'' with
                | Punct ")" :: rest ->
                    Num (if is_defined t name then "1" else "0") :: go rest
                | _ -> Punct "?" :: go tl'')
            | _ -> Punct "?" :: go tl')
        | Id name :: rest -> Num (if is_defined t name then "1" else "0") :: go rest
        | _ -> Punct "?" :: go tl)
    | hd :: tl -> hd :: go tl
  in
  go toks

(* Tiny Pratt parser over int64 for #if expressions. *)
let eval_if_expr ~file ~line toks =
  let toks = ref (drop_ws toks) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: tl -> toks := tl in
  let expect p =
    match peek () with
    | Some (Punct q) when q = p -> advance ()
    | _ -> error file line "#if: expected %s" p
  in
  let num_value s =
    let e = ref (String.length s) in
    while
      !e > 0 && (match s.[!e - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
    do
      decr e
    done;
    try Int64.of_string (String.sub s 0 !e) with _ -> 0L
  in
  let rec primary () =
    match peek () with
    | Some (Num s) -> advance (); num_value s
    | Some (Ch s) ->
        advance ();
        if String.length s >= 3 then Int64.of_int (Char.code s.[1]) else 0L
    | Some (Id _) -> advance (); 0L (* undefined identifiers are 0 *)
    | Some (Punct "(") ->
        advance ();
        let v = ternary () in
        expect ")"; v
    | Some (Punct "!") -> advance (); if primary () = 0L then 1L else 0L
    | Some (Punct "~") -> advance (); Int64.lognot (primary ())
    | Some (Punct "-") -> advance (); Int64.neg (primary ())
    | Some (Punct "+") -> advance (); primary ()
    | _ -> error file line "#if: parse error"
  and binop level =
    (* precedence-climbing over a fixed table *)
    let prec = function
      | "*" | "/" | "%" -> 10
      | "+" | "-" -> 9
      | "<<" | ">>" -> 8
      | "<" | ">" | "<=" | ">=" -> 7
      | "==" | "!=" -> 6
      | "&" -> 5
      | "^" -> 4
      | "|" -> 3
      | "&&" -> 2
      | "||" -> 1
      | _ -> 0
    in
    let apply op a b =
      let b2i x = if x then 1L else 0L in
      match op with
      | "*" -> Int64.mul a b
      | "/" -> if b = 0L then 0L else Int64.div a b
      | "%" -> if b = 0L then 0L else Int64.rem a b
      | "+" -> Int64.add a b
      | "-" -> Int64.sub a b
      | "<<" -> Int64.shift_left a (Int64.to_int b land 63)
      | ">>" -> Int64.shift_right a (Int64.to_int b land 63)
      | "<" -> b2i (a < b)
      | ">" -> b2i (a > b)
      | "<=" -> b2i (a <= b)
      | ">=" -> b2i (a >= b)
      | "==" -> b2i (a = b)
      | "!=" -> b2i (a <> b)
      | "&" -> Int64.logand a b
      | "^" -> Int64.logxor a b
      | "|" -> Int64.logor a b
      | "&&" -> b2i (a <> 0L && b <> 0L)
      | "||" -> b2i (a <> 0L || b <> 0L)
      | _ -> 0L
    in
    let rec loop lhs =
      match peek () with
      | Some (Punct op) when prec op >= level && prec op > 0 ->
          advance ();
          let rhs = binop (prec op + 1) in
          loop (apply op lhs rhs)
      | _ -> lhs
    in
    loop (primary ())
  and ternary () =
    let c = binop 1 in
    match peek () with
    | Some (Punct "?") ->
        advance ();
        let a = ternary () in
        expect ":";
        let b = ternary () in
        if c <> 0L then a else b
    | _ -> c
  in
  let v = ternary () in
  (match peek () with
  | None -> ()
  | Some _ -> error file line "#if: trailing tokens");
  v <> 0L

(* ------------------------------------------------------------------ *)
(* Driver: logical lines, comment removal, directives                  *)
(* ------------------------------------------------------------------ *)

(* Remove comments, tracking multi-line /* */ state.  Returns the cleaned
   line and the new state. *)
let strip_comments ~in_comment line =
  let n = String.length line in
  let b = Buffer.create n in
  let i = ref 0 in
  let in_c = ref in_comment in
  let quote = ref ' ' in
  while !i < n do
    let c = line.[!i] in
    if !in_c then begin
      if c = '*' && !i + 1 < n && line.[!i + 1] = '/' then begin
        in_c := false;
        Buffer.add_char b ' ';
        i := !i + 2
      end
      else incr i
    end
    else if !quote <> ' ' then begin
      Buffer.add_char b c;
      if c = '\\' && !i + 1 < n then begin
        Buffer.add_char b line.[!i + 1];
        i := !i + 2
      end
      else begin
        if c = !quote then quote := ' ';
        incr i
      end
    end
    else if c = '"' || c = '\'' then begin
      quote := c;
      Buffer.add_char b c;
      incr i
    end
    else if c = '/' && !i + 1 < n && line.[!i + 1] = '/' then i := n
    else if c = '/' && !i + 1 < n && line.[!i + 1] = '*' then begin
      in_c := true;
      i := !i + 2
    end
    else begin
      Buffer.add_char b c;
      incr i
    end
  done;
  (Buffer.contents b, !in_c)

type cond = { mutable active : bool; mutable taken : bool; parent_active : bool }

let read_source t name ~from_dir =
  let try_virtual () =
    List.find_map
      (function
        | Virtual fs -> List.assoc_opt name fs
        | Disk _ -> None)
      t.sources
  in
  let try_disk () =
    let candidates =
      (if from_dir <> "" then [ Filename.concat from_dir name ] else [])
      @ List.concat_map
          (function
            | Disk dirs -> List.map (fun d -> Filename.concat d name) dirs
            | Virtual _ -> [])
          t.sources
      @ [ name ]
    in
    List.find_map
      (fun path ->
        if Sys.file_exists path && not (Sys.is_directory path) then (
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          Some s)
        else None)
      candidates
  in
  match try_virtual () with Some s -> Some s | None -> try_disk ()

let emit_marker t file line =
  if t.out_file <> file || t.out_line <> line then begin
    Buffer.add_string t.out (Fmt.str "# %d \"%s\"\n" line file);
    t.out_file <- file;
    t.out_line <- line
  end

let emit_line t file line text =
  emit_marker t file line;
  Buffer.add_string t.out text;
  Buffer.add_char t.out '\n';
  t.out_line <- line + 1

let rec process_string t ~file content =
  if List.length t.included > t.max_depth then
    error file 0 "#include nesting too deep (cycle?)";
  t.included <- file :: t.included;
  let lines = String.split_on_char '\n' content in
  let conds : cond list ref = ref [] in
  let active () = List.for_all (fun c -> c.active) !conds in
  let in_comment = ref false in
  let lineno = ref 0 in
  let pending = Buffer.create 80 in
  let pending_start = ref 0 in
  let flush_logical raw_line =
    (* raw_line is the completed logical line (continuations joined) *)
    let line0 = !pending_start in
    let cleaned, c' = strip_comments ~in_comment:!in_comment raw_line in
    in_comment := c';
    let trimmed = String.trim cleaned in
    if String.length trimmed > 0 && trimmed.[0] = '#' then
      directive t ~file ~line:line0 conds active trimmed
    else if active () && trimmed <> "" then begin
      let toks = scan_line ~file ~line:line0 cleaned in
      let expanded = expand t ~file ~line:line0 ~hide:Sset.empty toks in
      emit_line t file line0 (render expanded)
    end
  in
  List.iter
    (fun line ->
      incr lineno;
      if Buffer.length pending = 0 then pending_start := !lineno;
      let len = String.length line in
      let line =
        if len > 0 && line.[len - 1] = '\r' then String.sub line 0 (len - 1)
        else line
      in
      let len = String.length line in
      if len > 0 && line.[len - 1] = '\\' then
        Buffer.add_string pending (String.sub line 0 (len - 1))
      else begin
        Buffer.add_string pending line;
        let logical = Buffer.contents pending in
        Buffer.clear pending;
        flush_logical logical
      end)
    lines;
  if Buffer.length pending > 0 then flush_logical (Buffer.contents pending);
  (match !conds with
  | [] -> ()
  | _ -> error file !lineno "unterminated #if");
  t.included <- List.tl t.included

and directive t ~file ~line conds active text =
  (* text starts with '#' *)
  let body = String.sub text 1 (String.length text - 1) in
  let body = String.trim body in
  let name, rest =
    let i = ref 0 in
    let n = String.length body in
    while !i < n && is_id_char body.[!i] do incr i done;
    (String.sub body 0 !i, String.trim (String.sub body !i (n - !i)))
  in
  let parent_active () = List.for_all (fun c -> c.active) !conds in
  match name with
  | "ifdef" | "ifndef" ->
      let neg = name = "ifndef" in
      let macro_name =
        match drop_ws (scan_line ~file ~line rest) with
        | Id m :: _ -> m
        | _ -> error file line "#%s: expected identifier" name
      in
      let v = is_defined t macro_name in
      let v = if neg then not v else v in
      let pa = parent_active () in
      conds := { active = pa && v; taken = v; parent_active = pa } :: !conds
  | "if" ->
      let pa = parent_active () in
      let v =
        if pa then
          let toks = replace_defined t (scan_line ~file ~line rest) in
          let toks = expand t ~file ~line ~hide:Sset.empty toks in
          eval_if_expr ~file ~line toks
        else false
      in
      conds := { active = pa && v; taken = v; parent_active = pa } :: !conds
  | "elif" -> (
      match !conds with
      | [] -> error file line "#elif without #if"
      | c :: _ ->
          if c.taken then c.active <- false
          else begin
            let v =
              if c.parent_active then
                let toks = replace_defined t (scan_line ~file ~line rest) in
                let toks = expand t ~file ~line ~hide:Sset.empty toks in
                eval_if_expr ~file ~line toks
              else false
            in
            c.active <- c.parent_active && v;
            c.taken <- v
          end)
  | "else" -> (
      match !conds with
      | [] -> error file line "#else without #if"
      | c :: _ ->
          c.active <- c.parent_active && not c.taken;
          c.taken <- true)
  | "endif" -> (
      match !conds with
      | [] -> error file line "#endif without #if"
      | _ :: tl -> conds := tl)
  | _ when not (active ()) -> ()
  | "define" ->
      let toks = scan_line ~file ~line rest in
      (match drop_ws toks with
      | Id mname :: _ -> (
          (* function-like iff '(' immediately follows the name (no ws) *)
          let after_name =
            let rec skip = function
              | Id m :: tl when m = mname -> tl
              | _ :: tl -> skip tl
              | [] -> []
            in
            skip toks
          in
          match after_name with
          | Punct "(" :: tl ->
              let rec params acc variadic = function
                | Ws :: l -> params acc variadic l
                | Punct ")" :: l -> (List.rev acc, variadic, l)
                | Id p :: l -> params (p :: acc) variadic l
                | Punct "..." :: l -> params ("__VA_ARGS__" :: acc) true l
                | Punct "," :: l -> params acc variadic l
                | _ -> error file line "#define %s: bad parameter list" mname
              in
              let ps, variadic, body_toks = params [] false tl in
              let body_toks =
                match body_toks with Ws :: l -> l | l -> l
              in
              Hashtbl.replace t.defines mname (Fn (ps, variadic, body_toks))
          | body_toks ->
              let body_toks = match body_toks with Ws :: l -> l | l -> l in
              Hashtbl.replace t.defines mname (Obj body_toks))
      | _ -> error file line "#define: expected macro name")
  | "undef" -> (
      match drop_ws (scan_line ~file ~line rest) with
      | Id m :: _ -> Hashtbl.remove t.defines m
      | _ -> error file line "#undef: expected identifier")
  | "include" -> (
      let rest_toks = drop_ws (scan_line ~file ~line rest) in
      let target, local =
        match rest_toks with
        | Str s :: _ -> (String.sub s 1 (String.length s - 2), true)
        | Punct "<" :: tl ->
            let rec until_gt acc = function
              | Punct ">" :: _ -> String.concat "" (List.rev acc)
              | tok :: tl -> until_gt (ptok_text tok :: acc) tl
              | [] -> error file line "#include: missing >"
            in
            (until_gt [] tl, false)
        | _ -> error file line "#include: expected \"file\" or <file>"
      in
      let from_dir = if local then Filename.dirname file else "" in
      match read_source t target ~from_dir with
      | Some content ->
          if List.mem target t.included then
            error file line "#include cycle through %s" target;
          process_string t ~file:target content;
          (* restore marker to the including file *)
          t.out_file <- "";
          t.out_line <- 0
      | None ->
          if local then error file line "#include: cannot find %S" target
          (* missing <system> headers expand to nothing: the analysis only
             needs assignment structure, and synthetic/test code carries its
             own declarations *))
  | "error" -> error file line "#error %s" rest
  | "warning" | "pragma" | "line" | "ident" -> ()
  | "" -> () (* a lone '#' is a null directive *)
  | other -> error file line "unknown directive #%s" other

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

(** Preprocess [content] as if it were file [file]; returns text with line
    markers, ready for {!Clexer}. *)
let preprocess_string ?include_dirs ?virtual_fs ?defines ~file content =
  let t = create ?include_dirs ?virtual_fs ?defines () in
  process_string t ~file content;
  Buffer.contents t.out

(** Preprocess a file from disk. *)
let preprocess_file ?include_dirs ?virtual_fs ?defines path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  preprocess_string ?include_dirs ?virtual_fs ?defines ~file:path content
