(** Forward data-dependence analysis — the deployed application the
    points-to system was built for (Section 2 of the paper).

    Given a target object whose type must change (say [short x] to
    [int x]), find every object that can take values from it, so that
    implicit narrowing conversions cannot lose data.  Dependencies are
    ranked by the Table 1 strength of the operations along the chain:
    direct assignments matter most, [x = y >> 3] less, [z = !y] not at all.
    For each dependent object we compute the most important dependence
    chain (fewest weak links), breaking ties by shortest length, and we
    support user-declared "non-targets" — objects known to be irrelevant —
    which prune everything reachable only through them. *)

open Cla_ir
open Cla_core

type t = {
  view : Objfile.view;
  solution : Solution.t;
  loader : Loader.t;
  (* z -> consumers of *q for z in pts(q): edges that fire when z is
     reached (built from the complex assignments the points-to run kept in
     core, plus its analysis-time indirect-call links) *)
  deref_edges : (int, (int * string option * Loc.t) list) Hashtbl.t;
}

let add_deref_edge t z dst op loc =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.deref_edges z) in
  Hashtbl.replace t.deref_edges z ((dst, op, loc) :: prev)

(** Prepare a dependence analysis from a linked view and a completed
    points-to run. *)
let prepare (view : Objfile.view) (pta : Andersen.result) : t =
  let t =
    {
      view;
      solution = pta.Andersen.solution;
      loader = Loader.create view;
      deref_edges = Hashtbl.create 256;
    }
  in
  List.iter
    (fun (p : Objfile.prim_rec) ->
      match p.Objfile.pkind with
      | Objfile.Pload ->
          (* x = *q: every pointee of q feeds x *)
          Lvalset.iter
            (fun z -> add_deref_edge t z p.Objfile.pdst None p.Objfile.ploc)
            (Solution.points_to t.solution p.Objfile.psrc)
      | Objfile.Pderef2 ->
          (* *p = *q: every pointee of q feeds every pointee of p *)
          Lvalset.iter
            (fun w ->
              Lvalset.iter
                (fun z -> add_deref_edge t w z None p.Objfile.ploc)
                (Solution.points_to t.solution p.Objfile.pdst))
            (Solution.points_to t.solution p.Objfile.psrc)
      | _ -> ())
    pta.Andersen.retained;
  List.iter
    (fun (dst, src, loc) -> add_deref_edge t src dst None loc)
    pta.Andersen.linked_copies;
  t

(* ------------------------------------------------------------------ *)
(* Query                                                               *)
(* ------------------------------------------------------------------ *)

(** One link of a dependence chain: the assignment through which the value
    flowed, with the operation (if any) it passed through. *)
type step = { s_var : int; s_op : string option; s_loc : Loc.t }

type dependent = {
  d_var : int;
  d_weak : int;  (** number of weak links on the best chain *)
  d_hops : int;  (** length of the best chain *)
  d_chain : step list;
      (** from the dependent object back to (and including) the target *)
}

type report = {
  r_target : int;
  r_dependents : dependent list;  (** sorted: most important chains first *)
}

module Pq = Set.Make (struct
  type t = int * int * int (* weak, hops, var *)

  let compare = compare
end)

let strength_of_op = function
  | None -> Strength.Strong
  | Some (op, s) ->
      ignore op;
      s

(** Run a dependence query from [target] (a variable id).  [non_targets]
    are never entered, pruning their downstream chains (Section 2's
    mechanism for focusing the report). *)
let query t ?(non_targets = []) (target : int) : report =
  let blocked = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace blocked v ()) non_targets;
  let dist : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let pred : (int, step) Hashtbl.t = Hashtbl.create 256 in
  let pq = ref (Pq.singleton (0, 0, target)) in
  Hashtbl.replace dist target (0, 0);
  let relax ~from_ ~to_ ~weak ~hops ~op ~loc =
    if not (Hashtbl.mem blocked to_) then begin
      let better =
        match Hashtbl.find_opt dist to_ with
        | None -> true
        | Some (w, h) -> (weak, hops) < (w, h)
      in
      if better then begin
        (match Hashtbl.find_opt dist to_ with
        | Some (w, h) -> pq := Pq.remove (w, h, to_) !pq
        | None -> ());
        Hashtbl.replace dist to_ (weak, hops);
        Hashtbl.replace pred to_ { s_var = from_; s_op = op; s_loc = loc };
        pq := Pq.add (weak, hops, to_) !pq
      end
    end
  in
  while not (Pq.is_empty !pq) do
    let ((weak, hops, v) as item) = Pq.min_elt !pq in
    pq := Pq.remove item !pq;
    match Hashtbl.find_opt dist v with
    | Some (w, h) when (w, h) < (weak, hops) -> () (* stale entry *)
    | _ ->
        (* forward edges out of v: demand-load v's block *)
        List.iter
          (fun (p : Objfile.prim_rec) ->
            match p.Objfile.pkind with
            | Objfile.Pcopy -> (
                let s = strength_of_op p.Objfile.pop in
                match s with
                | Strength.None_ -> () (* e.g. x = !v : ignore (Section 2) *)
                | _ ->
                    let op = Option.map fst p.Objfile.pop in
                    relax ~from_:v ~to_:p.Objfile.pdst
                      ~weak:(weak + if s = Strength.Weak then 1 else 0)
                      ~hops:(hops + 1) ~op ~loc:p.Objfile.ploc)
            | Objfile.Pstore ->
                (* *p = v: v flows into every pointee of p *)
                Lvalset.iter
                  (fun z ->
                    relax ~from_:v ~to_:z ~weak ~hops:(hops + 1) ~op:None
                      ~loc:p.Objfile.ploc)
                  (Solution.points_to t.solution p.Objfile.pdst)
            | Objfile.Pload | Objfile.Pderef2 | Objfile.Paddr -> ())
          (Loader.block t.loader v);
        (* deref consumers of v (x = *q / *p = *q with v in pts(q)) *)
        (match Hashtbl.find_opt t.deref_edges v with
        | Some edges ->
            List.iter
              (fun (dst, op, loc) ->
                relax ~from_:v ~to_:dst ~weak ~hops:(hops + 1) ~op ~loc)
              edges
        | None -> ())
  done;
  let deps = ref [] in
  Hashtbl.iter
    (fun v (w, h) ->
      if v <> target then begin
        (* reconstruct the chain back to the target *)
        let rec walk v acc =
          match Hashtbl.find_opt pred v with
          | Some s ->
              let acc = { s with s_var = s.s_var } :: acc in
              if s.s_var = target then List.rev acc else walk s.s_var acc
          | None -> List.rev acc
        in
        let chain = walk v [] in
        deps := { d_var = v; d_weak = w; d_hops = h; d_chain = chain } :: !deps
      end)
    dist;
  let dependents =
    List.sort
      (fun a b -> compare (a.d_weak, a.d_hops, a.d_var) (b.d_weak, b.d_hops, b.d_var))
      !deps
  in
  { r_target = target; r_dependents = dependents }

(** Resolve variables by display name and run the query on the first
    match; non-target names that do not resolve are ignored. *)
let query_by_name t ?(non_targets = []) (target : string) : report option =
  match Objfile.find_targets t.view target with
  | [] -> None
  | tv :: _ ->
      let nts =
        List.concat_map (fun n -> Objfile.find_targets t.view n) non_targets
      in
      Some (query t ~non_targets:nts tv)

(* ------------------------------------------------------------------ *)
(* Narrowing check (the motivating application, Section 2)             *)
(* ------------------------------------------------------------------ *)

(** Bit width of a C integer type, if it is one.  Pointer, struct and
    floating types return [None] (widening an integer target does not
    force them to change). *)
let width_of_type t =
  match String.trim t with
  | "char" | "signed char" | "unsigned char" -> Some 8
  | "short" | "unsigned short" -> Some 16
  | "int" | "unsigned int" | "signed" | "unsigned" -> Some 32
  | "long" | "unsigned long" | "long long" | "unsigned long long" -> Some 64
  | _ -> None

type verdict =
  | Must_widen  (** narrower than the target's new type: data loss *)
  | Wide_enough
  | Not_integer  (** pointer/struct/unknown: flag for manual review *)

type narrowing = {
  nv_var : int;
  nv_typ : string;
  nv_verdict : verdict;
}

(** Integer constants known to flow directly into [var] (from the object
    file's constants section) — evidence for why a widening is needed. *)
let constants_of t var =
  List.filter_map
    (fun (v, c) -> if v = var then Some c else None)
    t.view.Objfile.rconsts

(** [check_narrowing t report ~new_type] classifies every dependent of the
    report: if the target's type grows to [new_type], which dependents
    must grow with it to avoid implicit narrowing conversions? *)
let check_narrowing t (r : report) ~new_type : narrowing list =
  let new_bits = width_of_type new_type in
  List.map
    (fun (d : dependent) ->
      let typ = t.view.Objfile.rvars.(d.d_var).Objfile.vtyp in
      let verdict =
        match (width_of_type typ, new_bits) with
        | Some w, Some nw -> if w < nw then Must_widen else Wide_enough
        | _, _ -> Not_integer
      in
      { nv_var = d.d_var; nv_typ = typ; nv_verdict = verdict })
    r.r_dependents

let pp_verdict ppf = function
  | Must_widen -> Fmt.string ppf "WIDEN"
  | Wide_enough -> Fmt.string ppf "ok"
  | Not_integer -> Fmt.string ppf "check"

(* ------------------------------------------------------------------ *)
(* Printing (Figure 1's chain format)                                  *)
(* ------------------------------------------------------------------ *)

let pp_obj t ppf v =
  let vi = t.view.Objfile.rvars.(v) in
  if vi.Objfile.vtyp = "" then
    Fmt.pf ppf "%s %a" vi.Objfile.vname Loc.pp vi.Objfile.vloc
  else
    Fmt.pf ppf "%s/%s %a" vi.Objfile.vname vi.Objfile.vtyp Loc.pp vi.Objfile.vloc

(* "w/short <eg1.c:3> ! u/short <eg1.c:7> ! target/short <eg1.c:6>
    where target/short <eg1.c:1>": the dependent object at its declaration,
    then each source object at the assignment that forwarded the value,
    ending with the target's declaration. *)
let pp_dependent t ppf (d : dependent) =
  let vi v = t.view.Objfile.rvars.(v) in
  let name v =
    let i = vi v in
    if i.Objfile.vtyp = "" then i.Objfile.vname
    else i.Objfile.vname ^ "/" ^ i.Objfile.vtyp
  in
  Fmt.pf ppf "%s %a" (name d.d_var) Loc.pp (vi d.d_var).Objfile.vloc;
  List.iter
    (fun s -> Fmt.pf ppf " ! %s %a" (name s.s_var) Loc.pp s.s_loc)
    d.d_chain;
  match List.rev d.d_chain with
  | last :: _ ->
      Fmt.pf ppf " where %s %a" (name last.s_var) Loc.pp (vi last.s_var).Objfile.vloc
  | [] -> ()

let pp_report t ppf (r : report) =
  Fmt.pf ppf "target: %a@." (pp_obj t) r.r_target;
  Fmt.pf ppf "%d dependent object(s)@." (List.length r.r_dependents);
  List.iter (fun d -> Fmt.pf ppf "  %a@." (pp_dependent t) d) r.r_dependents

(* "We also provide a collection of graphic user interface tools for
   browsing the tree of chains" (Section 2): the best chains form a tree
   rooted at the target (each dependent's chain's first hop is its
   parent), printed here with box-drawing characters. *)

(** Render the report's chains as a tree rooted at the target.  Each node
    shows the object and the location of the assignment that feeds it;
    weak links are marked with the operation. *)
let pp_tree t ppf (r : report) =
  (* children of v: dependents whose chain starts with a step from v *)
  let children = Hashtbl.create 64 in
  List.iter
    (fun (d : dependent) ->
      match d.d_chain with
      | step :: _ ->
          let parent = step.s_var in
          let prev = Option.value ~default:[] (Hashtbl.find_opt children parent) in
          Hashtbl.replace children parent ((d, step) :: prev)
      | [] -> ())
    r.r_dependents;
  let label v =
    let vi = t.view.Objfile.rvars.(v) in
    if vi.Objfile.vtyp = "" then vi.Objfile.vname
    else vi.Objfile.vname ^ "/" ^ vi.Objfile.vtyp
  in
  Fmt.pf ppf "%a@." (pp_obj t) r.r_target;
  let rec walk prefix v =
    let kids =
      Option.value ~default:[] (Hashtbl.find_opt children v)
      |> List.sort (fun ((a : dependent), _) (b, _) ->
             compare (a.d_weak, a.d_hops, a.d_var) (b.d_weak, b.d_hops, b.d_var))
    in
    let n = List.length kids in
    List.iteri
      (fun i ((d : dependent), (step : step)) ->
        let last = i = n - 1 in
        let branch = if last then "`-- " else "|-- " in
        let cont = if last then "    " else "|   " in
        let op =
          match step.s_op with Some o -> Fmt.str " [%s]" o | None -> ""
        in
        Fmt.pf ppf "%s%s%s%s %a@." prefix branch (label d.d_var) op Loc.pp
          step.s_loc;
        walk (prefix ^ cont) d.d_var)
      kids
  in
  walk "" r.r_target

(** Like {!pp_report}, with each chain annotated by the narrowing verdict
    for a proposed retyping of the target. *)
let pp_report_narrowing t ~new_type ppf (r : report) =
  Fmt.pf ppf "target: %a, retyped to %s@." (pp_obj t) r.r_target new_type;
  (match constants_of t r.r_target with
  | [] -> ()
  | cs ->
      Fmt.pf ppf "constants observed flowing into the target: %a@."
        Fmt.(list ~sep:(any ", ") int64)
        cs);
  let verdicts = check_narrowing t r ~new_type in
  Fmt.pf ppf "%d dependent object(s)@." (List.length r.r_dependents);
  List.iter2
    (fun d n ->
      Fmt.pf ppf "  [%-5s] %a@."
        (Fmt.str "%a" pp_verdict n.nv_verdict)
        (pp_dependent t) d)
    r.r_dependents verdicts
