lib/depend/depend.ml: Andersen Array Cla_core Cla_ir Fmt Hashtbl List Loader Loc Lvalset Objfile Option Set Solution Strength String
