lib/depend/depend.mli: Andersen Cla_core Cla_ir Format Hashtbl Loader Loc Objfile Solution
