(** Forward data-dependence analysis — the deployed application the
    points-to system was built for (Section 2 of the paper).

    Given a target object whose type must change, find every object that
    can take values from it, rank the dependence chains by the Table 1
    strength of the operations along them (fewest weak links first,
    shortest among equals), and — with {!check_narrowing} — classify which
    dependents must widen with the target to avoid implicit narrowing
    conversions. *)

open Cla_ir
open Cla_core

type t = {
  view : Objfile.view;
  solution : Solution.t;
  loader : Loader.t;
  deref_edges : (int, (int * string option * Loc.t) list) Hashtbl.t;
}

(** Build a dependence analysis from a linked view and a completed
    points-to run (whose retained complex assignments and analysis-time
    indirect-call links it reuses — exactly what Section 6's discard
    strategy keeps in core). *)
val prepare : Objfile.view -> Andersen.result -> t

(** One link of a chain: the source object and the assignment through
    which the value flowed. *)
type step = { s_var : int; s_op : string option; s_loc : Loc.t }

type dependent = {
  d_var : int;
  d_weak : int;  (** weak links on the best chain *)
  d_hops : int;  (** length of the best chain *)
  d_chain : step list;  (** from the dependent back to the target *)
}

type report = {
  r_target : int;
  r_dependents : dependent list;  (** most important chains first *)
}

(** Dependence query from a variable id.  [non_targets] are never entered,
    pruning chains through objects the user knows are irrelevant. *)
val query : t -> ?non_targets:int list -> int -> report

(** Resolve the target (and non-targets) by display name. *)
val query_by_name : t -> ?non_targets:string list -> string -> report option

(** {1 Narrowing check (the motivating application)} *)

(** Bit width of a C integer type ([None] for pointers, structs, floats). *)
val width_of_type : string -> int option

type verdict =
  | Must_widen  (** narrower than the target's new type: data loss *)
  | Wide_enough
  | Not_integer  (** flag for manual review *)

type narrowing = { nv_var : int; nv_typ : string; nv_verdict : verdict }

(** Integer constants known to flow directly into a variable (from the
    object file's constants section). *)
val constants_of : t -> int -> int64 list

(** Classify every dependent: if the target's type grows to [new_type],
    which dependents must grow with it? *)
val check_narrowing : t -> report -> new_type:string -> narrowing list

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Printing (Figure 1's chain format)} *)

val pp_obj : t -> Format.formatter -> int -> unit
val pp_dependent : t -> Format.formatter -> dependent -> unit
val pp_report : t -> Format.formatter -> report -> unit

(** Report with per-chain narrowing verdicts for a proposed retyping. *)
val pp_report_narrowing :
  t -> new_type:string -> Format.formatter -> report -> unit

(** The chains rendered as a tree rooted at the target — the browsable
    view Section 2 describes. *)
val pp_tree : t -> Format.formatter -> report -> unit
