(** Source locations.

    Every primitive assignment and variable carries a location so that the
    dependence analysis (Section 2 of the paper) can print chains of the form
    [w/short <eg1.c:3> -> u/short <eg1.c:7> -> ...]. *)

type t = {
  file : string;  (** source file name, ["<none>"] when synthesized *)
  line : int;  (** 1-based line number, [0] when unknown *)
  col : int;  (** 1-based column number, [0] when unknown *)
}

let none = { file = "<none>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let is_none l = l.line = 0 && l.file = "<none>"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let equal a b = compare a b = 0

(* Printed as <file:line>, matching the paper's Figure 1 notation; the column
   is kept internal because the paper never shows it. *)
let pp ppf l =
  if is_none l then Fmt.string ppf "<?>"
  else Fmt.pf ppf "<%s:%d>" l.file l.line

let to_string l = Fmt.str "%a" pp l
