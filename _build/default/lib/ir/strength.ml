(** Dependence-strength classification of operations (Table 1 of the paper).

    A dependence edge arising from [x = y] is [Strong]; one arising from
    [x = y * z] is [Weak] in both arguments; one arising from [x = !y] is
    [None_] — changing the type of [y] cannot affect the range of [x].  The
    dependence analysis uses the strength to rank chains and to drop
    [None_]-strength edges entirely. *)

type t =
  | None_  (** the operation severs the dependence (e.g. [!], [&&]) *)
  | Weak  (** the operation may preserve magnitude (e.g. [*], [>>]) *)
  | Strong  (** the operation preserves the shape/size of data (e.g. [+]) *)

let equal (a : t) (b : t) = a = b

(* None_ < Weak < Strong *)
let rank = function None_ -> 0 | Weak -> 1 | Strong -> 2
let compare a b = Int.compare (rank a) (rank b)
let min a b = if rank a <= rank b then a else b
let max a b = if rank a >= rank b then a else b
let pp ppf s = Fmt.string ppf (match s with None_ -> "none" | Weak -> "weak" | Strong -> "strong")
let to_string s = Fmt.str "%a" pp s

(** Which argument of an operation are we classifying? *)
type position = Arg1 | Arg2

(** [classify op pos] returns the strength of the dependence from argument
    [pos] of operation [op] to the operation's result, per Table 1.

    Operations absent from Table 1 are classified conservatively:
    comparisons and logical operations yield [None_] (their result is 0/1);
    division behaves like [%] (quotient magnitude is bounded by argument 1);
    casts and conditional expressions are [Strong]. *)
let classify op pos =
  match (op, pos) with
  | ("+" | "-" | "|" | "&" | "^"), _ -> Strong
  | "*", _ -> Weak
  | ("%" | ">>" | "<<" | "/"), Arg1 -> Weak
  | ("%" | ">>" | "<<" | "/"), Arg2 -> None_
  | ("u+" | "u-"), _ -> Strong (* unary +, - *)
  | "~", _ -> Strong (* bitwise not preserves width *)
  | ("&&" | "||" | "!"), _ -> None_
  | ("==" | "!=" | "<" | ">" | "<=" | ">="), _ -> None_
  | "cast", _ -> Strong
  | "?:", _ -> Strong
  | _, _ -> Weak (* unknown operations: assume they may matter *)
