(** A translation unit (or a whole linked program) in primitive form. *)

(** Function definition record.  The object file keeps, per defined
    function, its arity so that indirect calls can be linked at analysis
    time: when function [g] enters the points-to set of a called pointer
    [f], the analysis adds [g@i = f@i] and [f@ret = g@ret] (Section 4). *)
type fundef = {
  fvar : Var.t;  (** the [Func]-kind variable for the function *)
  arity : int;
  floc : Loc.t;
}

(** A call through a function pointer: the expression [( *f)(e1,...,en)]
    marks [f] as an indirectly-called pointer of the given arity. *)
type indirect = {
  ptr : Var.t;  (** the pointer expression's variable *)
  nargs : int;
  iloc : Loc.t;
}

type t = {
  file : string;  (** source file this unit came from, or ["<linked>"] *)
  assigns : Prim.t list;
  fundefs : fundef list;
  indirects : indirect list;
  vars : Var.t array;  (** all variables, indexed by [uid] *)
  consts : (Var.t * int64) list;
      (** integer constants assigned directly to an object — the paper's
          "sections that record information about constants", used by the
          narrowing checker *)
}

let empty file =
  { file; assigns = []; fundefs = []; indirects = []; vars = [||]; consts = [] }

let counts t = Prim.count_list t.assigns
let n_assigns t = List.length t.assigns
let n_vars t = Array.length t.vars

(** Number of source-program objects (Table 2's "program variables"
    column): every variable except normalizer temporaries. *)
let n_program_vars t =
  Array.fold_left
    (fun n v -> if Var.kind v = Var.Temp then n else n + 1)
    0 t.vars

let pp ppf t =
  Fmt.pf ppf "@[<v>unit %s: %d vars, %d assigns@," t.file (n_vars t)
    (n_assigns t);
  List.iter (fun a -> Fmt.pf ppf "  %a %a@," Prim.pp a Loc.pp a.Prim.loc) t.assigns;
  List.iter
    (fun f -> Fmt.pf ppf "  fundef %a/%d@," Var.pp f.fvar f.arity)
    t.fundefs;
  List.iter
    (fun i -> Fmt.pf ppf "  indirect (*%a)(...%d args)@," Var.pp i.ptr i.nargs)
    t.indirects;
  Fmt.pf ppf "@]"
