lib/ir/prim.ml: Fmt List Loc Strength Var
