lib/ir/strength.mli: Format
