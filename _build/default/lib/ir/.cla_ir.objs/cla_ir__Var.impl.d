lib/ir/var.ml: Fmt Int Loc
