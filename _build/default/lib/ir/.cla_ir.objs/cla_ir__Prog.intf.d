lib/ir/prog.mli: Format Loc Prim Var
