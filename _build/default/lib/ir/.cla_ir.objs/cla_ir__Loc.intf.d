lib/ir/loc.mli: Format
