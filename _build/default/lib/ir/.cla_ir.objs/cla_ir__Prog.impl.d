lib/ir/prog.ml: Array Fmt List Loc Prim Var
