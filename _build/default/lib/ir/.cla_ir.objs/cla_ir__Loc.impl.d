lib/ir/loc.ml: Fmt Int String
