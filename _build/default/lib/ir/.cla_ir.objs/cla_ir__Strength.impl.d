lib/ir/strength.ml: Fmt Int
