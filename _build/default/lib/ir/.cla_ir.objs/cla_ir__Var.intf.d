lib/ir/var.mli: Format Loc
