lib/ir/vartab.mli: Loc Var
