lib/ir/vartab.ml: Array Fmt Hashtbl List Loc Var
