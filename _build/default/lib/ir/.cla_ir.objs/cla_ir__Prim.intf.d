lib/ir/prim.mli: Format Loc Strength Var
