(** Dependence-strength classification of operations (Table 1 of the
    paper).

    The dependence analysis ranks chains by how likely each operation is
    to preserve the shape and size of the data flowing through it: a plain
    assignment preserves it, [y >> 3] only partially, [!y] not at all. *)

type t =
  | None_  (** severs the dependence ([!], [&&], comparisons) *)
  | Weak  (** may preserve magnitude ([*], [>>], [%]) *)
  | Strong  (** preserves shape/size ([+], [-], [|], [&], [^]) *)

val equal : t -> t -> bool

(** Total order: [None_ < Weak < Strong]. *)
val compare : t -> t -> int

val min : t -> t -> t
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Which argument of a binary operation is being classified. *)
type position = Arg1 | Arg2

(** [classify op pos] is Table 1, with conservative extensions for
    operations the table omits (comparisons sever; division behaves like
    [%]; casts and conditionals are strong; unknown operators are weak). *)
val classify : string -> position -> t
