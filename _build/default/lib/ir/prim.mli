(** Primitive assignments — the five-kind intermediate language of the CLA
    database (Section 4 of the paper).

    Every C assignment, initializer, argument pass and return lowers to
    these forms; nested [*]/[&] and operator arguments go through
    temporaries.  [Copy] optionally remembers the operation it came from
    ([x = y + z] yields two copies, each tagged with ["+"] and its Table 1
    strength). *)

(** Operation provenance on a [Copy]. *)
type opinfo = {
  op : string;  (** source operator, e.g. ["+"], [">>"], ["cast"] *)
  strength : Strength.t;
}

val pure_copy : opinfo option

(** [opinfo op pos] tags a copy with [op], classifying the strength of
    argument position [pos] per Table 1. *)
val opinfo : string -> Strength.position -> opinfo option

type kind =
  | Copy of opinfo option  (** [x = y], optionally through an operation *)
  | Addr  (** [x = &y] — the only base assignment *)
  | Store  (** [*x = y] *)
  | Load  (** [x = *y] *)
  | Deref2  (** [*x = *y] *)

type t = { dst : Var.t; src : Var.t; kind : kind; loc : Loc.t }

val copy : ?op:opinfo -> loc:Loc.t -> Var.t -> Var.t -> t
val addr : loc:Loc.t -> Var.t -> Var.t -> t
val store : loc:Loc.t -> Var.t -> Var.t -> t
val load : loc:Loc.t -> Var.t -> Var.t -> t
val deref2 : loc:Loc.t -> Var.t -> Var.t -> t

(** Strength of the dependence edge [src -> dst] this assignment induces
    (pointer-indirection assignments behave like direct copies). *)
val strength : t -> Strength.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Table 2 buckets, in the paper's column order. *)
type counts = {
  n_copy : int;
  n_addr : int;
  n_store : int;
  n_deref2 : int;
  n_load : int;
}

val zero_counts : counts
val count_one : counts -> t -> counts
val count_list : t list -> counts
val total : counts -> int
val add_counts : counts -> counts -> counts
val pp_counts : Format.formatter -> counts -> unit
