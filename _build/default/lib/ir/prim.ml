(** Primitive assignments — the five-kind intermediate language of the CLA
    database (Section 4 of the paper).

    The compile phase breaks every C assignment, initializer, argument
    passing and return down to these forms, introducing temporaries for
    nested [*]/[&] and for operator arguments.  Each [Copy] optionally
    records the operation it came from ([x = y + z] yields two copies
    [x = y] and [x = z], each remembering ["+"] and its Table 1 strength) —
    the paper keeps this provenance for printing dependence chains. *)

(** Operation provenance attached to a [Copy]. *)
type opinfo = {
  op : string;  (** source operator, e.g. ["+"], [">>"], ["cast"] *)
  strength : Strength.t;  (** Table 1 strength of this argument position *)
}

let pure_copy = None

let opinfo op pos = Some { op; strength = Strength.classify op pos }

type kind =
  | Copy of opinfo option  (** [x = y], optionally through an operation *)
  | Addr  (** [x = &y] — the only base assignment *)
  | Store  (** [*x = y] *)
  | Load  (** [x = *y] *)
  | Deref2  (** [*x = *y] *)

type t = {
  dst : Var.t;
  src : Var.t;
  kind : kind;
  loc : Loc.t;
}

let copy ?op ~loc dst src = { dst; src; kind = Copy op; loc }
let addr ~loc dst src = { dst; src; kind = Addr; loc }
let store ~loc dst src = { dst; src; kind = Store; loc }
let load ~loc dst src = { dst; src; kind = Load; loc }
let deref2 ~loc dst src = { dst; src; kind = Deref2; loc }

(** Strength of the dependence edge [src -> dst] this assignment induces.
    Pointer-indirection assignments behave like direct copies ([Strong]). *)
let strength t =
  match t.kind with
  | Copy (Some { strength; _ }) -> strength
  | Copy None | Addr | Store | Load | Deref2 -> Strength.Strong

let pp ppf t =
  match t.kind with
  | Copy None -> Fmt.pf ppf "%a = %a" Var.pp t.dst Var.pp t.src
  | Copy (Some { op; _ }) -> Fmt.pf ppf "%a =[%s] %a" Var.pp t.dst op Var.pp t.src
  | Addr -> Fmt.pf ppf "%a = &%a" Var.pp t.dst Var.pp t.src
  | Store -> Fmt.pf ppf "*%a = %a" Var.pp t.dst Var.pp t.src
  | Load -> Fmt.pf ppf "%a = *%a" Var.pp t.dst Var.pp t.src
  | Deref2 -> Fmt.pf ppf "*%a = *%a" Var.pp t.dst Var.pp t.src

let to_string t = Fmt.str "%a" pp t

(** Table 2 buckets, in the paper's column order:
    [x = y], [x = &y], [*x = y], [*x = *y], [x = *y]. *)
type counts = {
  n_copy : int;
  n_addr : int;
  n_store : int;
  n_deref2 : int;
  n_load : int;
}

let zero_counts = { n_copy = 0; n_addr = 0; n_store = 0; n_deref2 = 0; n_load = 0 }

let count_one c t =
  match t.kind with
  | Copy _ -> { c with n_copy = c.n_copy + 1 }
  | Addr -> { c with n_addr = c.n_addr + 1 }
  | Store -> { c with n_store = c.n_store + 1 }
  | Deref2 -> { c with n_deref2 = c.n_deref2 + 1 }
  | Load -> { c with n_load = c.n_load + 1 }

let count_list l = List.fold_left count_one zero_counts l

let total c = c.n_copy + c.n_addr + c.n_store + c.n_deref2 + c.n_load

let add_counts a b =
  {
    n_copy = a.n_copy + b.n_copy;
    n_addr = a.n_addr + b.n_addr;
    n_store = a.n_store + b.n_store;
    n_deref2 = a.n_deref2 + b.n_deref2;
    n_load = a.n_load + b.n_load;
  }

let pp_counts ppf c =
  Fmt.pf ppf "x=y:%d x=&y:%d *x=y:%d *x=*y:%d x=*y:%d" c.n_copy c.n_addr
    c.n_store c.n_deref2 c.n_load
