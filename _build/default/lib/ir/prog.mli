(** A translation unit (or a whole linked program) in primitive form —
    the normalizer's output and the compile phase's input. *)

(** Per defined function: its arity, so indirect calls can be linked at
    analysis time (Section 4). *)
type fundef = { fvar : Var.t; arity : int; floc : Loc.t }

(** A call through a function pointer. *)
type indirect = { ptr : Var.t; nargs : int; iloc : Loc.t }

type t = {
  file : string;
  assigns : Prim.t list;
  fundefs : fundef list;
  indirects : indirect list;
  vars : Var.t array;  (** all variables, indexed by uid *)
  consts : (Var.t * int64) list;
      (** integer constants assigned directly to an object (feeds the
          narrowing checker) *)
}

val empty : string -> t
val counts : t -> Prim.counts
val n_assigns : t -> int
val n_vars : t -> int

(** Source-program objects: everything except normalizer temporaries
    (Table 2's "program variables"). *)
val n_program_vars : t -> int

val pp : Format.formatter -> t -> unit
