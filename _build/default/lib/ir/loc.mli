(** Source locations, printed in the paper's Figure 1 notation
    ([<eg1.c:3>]). *)

type t = {
  file : string;
  line : int;  (** 1-based; 0 when unknown *)
  col : int;  (** 1-based; 0 when unknown *)
}

val none : t
val make : file:string -> line:int -> col:int -> t
val is_none : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
