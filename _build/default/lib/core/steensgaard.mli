(** Baseline: unification-based (Steensgaard-style) points-to analysis —
    near-linear time, coarser results.  The computed sets must be
    supersets of Andersen's, a property the test suite checks.

    Exposed pieces beyond {!solve} support white-box tests. *)

type t

val create : Objfile.view -> t

(** Run the unification passes (assignments, then iterated indirect-call
    linking). *)
val process : t -> unit

(** [pts(x)] is every address-taken object in the class [x] points to. *)
val solve : Objfile.view -> Solution.t
