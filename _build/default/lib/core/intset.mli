(** Open-addressing hash set of non-negative ints.

    One cache miss per operation — the pre-transitive solver performs
    millions of edge-dedup probes, where the stdlib [Hashtbl]'s chained
    buckets and per-insert allocation dominate solver time. *)

type t

(** [create capacity] sizes the table for about [capacity] elements. *)
val create : int -> t

val length : t -> int

(** [add t key] inserts; returns [true] iff the key was not present. *)
val add : t -> int -> bool

val mem : t -> int -> bool
