(** Binary encoding primitives for CLA object files (LEB128 varints,
    length-prefixed byte strings, little-endian fixed words). *)

(** {1 Writer} *)

type writer = Buffer.t

val writer : unit -> writer

(** Current write position (section offsets). *)
val wpos : writer -> int

val u8 : writer -> int -> unit
val u32 : writer -> int -> unit

(** Unsigned LEB128; rejects negatives. *)
val varint : writer -> int -> unit

(** Length-prefixed bytes. *)
val bytes_ : writer -> string -> unit

val contents : writer -> string

(** Patch a previously-written u32 (section tables whose offsets are only
    known after serialization). *)
val patch_u32 : Bytes.t -> pos:int -> int -> unit

(** {1 Reader} *)

exception Corrupt of string

(** A cursor over an immutable byte string; cheap to create, so the
    demand loader makes one per block read. *)
type reader = { data : string; mutable pos : int; limit : int }

val reader : ?pos:int -> ?limit:int -> string -> reader
val ru8 : reader -> int
val ru32 : reader -> int

(** Unsigned LEB128.  Raises {!Corrupt} on truncation, on encodings
    longer than 9 data bytes, and on values that do not fit OCaml's
    non-negative 63-bit int range — hostile input can never produce
    silent garbage (or a negative id) through shift overflow. *)
val rvarint : reader -> int

val rbytes : reader -> string

(** Read a u32 record count, rejecting (as {!Corrupt}) any count larger
    than the remaining bytes divided by [min_size] (default 1) — a
    corrupt count must fail before the allocation it would size. *)
val rcount : ?min_size:int -> reader -> int

val at_end : reader -> bool
