(** Database-to-database transformers.

    Section 4 of the paper: "we can write pre-analysis optimizers as
    database to database transformers.  In fact, we have experimented with
    context-sensitivity by writing a transformation that reads in databases
    and simulates context-sensitivity by controlled duplication of
    primitive assignments in the database — this requires no changes to
    code in the compile, link or analyze components of our system."

    Two transformers are provided:

    - {!substitute_variables} — offline variable substitution in the style
      of Rountev & Chandra (PLDI 2000, the paper's reference [21]): merge a
      variable into its unique copy source when the two provably have equal
      points-to sets, shrinking the constraint system before analysis.
    - {!duplicate_contexts} — one-level context-sensitivity: clone a
      function's primitive assignments per direct call site, so arguments
      of different calls no longer join (Section 5's join-point effect,
      attacked from the other side).

    Both consume and produce {!Objfile.db} values, so they compose with
    each other and slot between the link and analyze phases. *)

open Cla_ir

(* ------------------------------------------------------------------ *)
(* Offline variable substitution                                       *)
(* ------------------------------------------------------------------ *)

type subst_stats = {
  merged_vars : int;  (** variables eliminated *)
  dropped_assignments : int;
  mapping : int array;  (** old var id -> new var id (for result comparison) *)
}

(* union-find over var ids *)
let rec find parent v =
  if parent.(v) = v then v
  else begin
    let r = find parent parent.(v) in
    parent.(v) <- r;
    r
  end

(** Merge each variable whose points-to set provably equals another's.

    [v] is merged into [u] when [v]'s only inflow is the single plain copy
    [v = u] and [v] can never gain points-to elements any other way: it is
    never address-taken (so no store can reach it), no load targets it,
    and it is not a standardized argument/return variable (those gain
    inflows when indirect calls are linked at analysis time). *)
let substitute_variables (db : Objfile.db) : Objfile.db * subst_stats =
  let n = Array.length db.Objfile.vars in
  let addr_taken = Array.make n false in
  let copies_in : int list array = Array.make n [] in
  let other_inflow = Array.make n false in
  List.iter
    (fun (p : Objfile.prim_rec) -> addr_taken.(p.Objfile.psrc) <- true)
    db.Objfile.statics;
  List.iter
    (fun (p : Objfile.prim_rec) -> other_inflow.(p.Objfile.pdst) <- true)
    db.Objfile.statics;
  Array.iter
    (List.iter (fun (p : Objfile.prim_rec) ->
         match (p.Objfile.pkind, p.Objfile.pop) with
         | Objfile.Pcopy, None ->
             copies_in.(p.Objfile.pdst) <- p.Objfile.psrc :: copies_in.(p.Objfile.pdst)
         | Objfile.Pcopy, Some _ ->
             (* operator copies are analysis-irrelevant unless pointer
                preserving; treat conservatively as an extra inflow *)
             other_inflow.(p.Objfile.pdst) <- true
         | Objfile.Pload, _ -> other_inflow.(p.Objfile.pdst) <- true
         | (Objfile.Pstore | Objfile.Pderef2 | Objfile.Paddr), _ -> ()))
    db.Objfile.blocks;
  let special = Array.make n false in
  Array.iteri
    (fun i (vi : Objfile.varinfo) ->
      match vi.Objfile.vkind with
      | Var.Arg _ | Var.Ret | Var.Func -> special.(i) <- true
      | _ -> ())
    db.Objfile.vars;
  let parent = Array.init n (fun i -> i) in
  let merged = ref 0 in
  Array.iteri
    (fun v srcs ->
      match srcs with
      | [ u ]
        when (not addr_taken.(v)) && (not other_inflow.(v)) && not special.(v)
        ->
          let ru = find parent u and rv = find parent v in
          if ru <> rv then begin
            (* merge v into u's class (u keeps its own inflows) *)
            parent.(rv) <- ru;
            incr merged
          end
      | _ -> ())
    copies_in;
  (* compact renumbering of surviving representatives *)
  let newid = Array.make n (-1) in
  let kept = ref [] in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if find parent v = v then begin
      newid.(v) <- !next;
      incr next;
      kept := db.Objfile.vars.(v) :: !kept
    end
  done;
  let vars = Array.of_list (List.rev !kept) in
  let remap v = newid.(find parent v) in
  let dropped = ref 0 in
  let remap_prim (p : Objfile.prim_rec) =
    let pdst = remap p.Objfile.pdst and psrc = remap p.Objfile.psrc in
    match p.Objfile.pkind with
    | Objfile.Pcopy when pdst = psrc && p.Objfile.pop = None ->
        incr dropped;
        None
    | _ -> Some { p with Objfile.pdst; psrc }
  in
  let statics = List.filter_map remap_prim db.Objfile.statics in
  let blocks = Array.make !next [] in
  Array.iter
    (List.iter (fun p ->
         match remap_prim p with
         | Some p -> blocks.(p.Objfile.psrc) <- p :: blocks.(p.Objfile.psrc)
         | None -> ()))
    db.Objfile.blocks;
  Array.iteri (fun i l -> blocks.(i) <- List.rev l) blocks;
  let remap_opt v = if v >= 0 then remap v else v in
  let fundefs =
    List.map
      (fun (f : Objfile.fund_rec) ->
        {
          f with
          Objfile.ffvar = remap f.Objfile.ffvar;
          fret = remap_opt f.Objfile.fret;
          fargs = Array.map remap_opt f.Objfile.fargs;
        })
      db.Objfile.fundefs
  in
  let indirects =
    List.map
      (fun (r : Objfile.indir_rec) ->
        {
          r with
          Objfile.iptr = remap r.Objfile.iptr;
          iret = remap_opt r.Objfile.iret;
          iargs = Array.map remap_opt r.Objfile.iargs;
        })
      db.Objfile.indirects
  in
  let keys = List.map (fun (v, key) -> (remap v, key)) db.Objfile.keys in
  let consts = List.map (fun (v, c) -> (remap v, c)) db.Objfile.consts in
  ( { db with Objfile.vars; keys; statics; blocks; fundefs; indirects; consts },
    {
      merged_vars = !merged;
      dropped_assignments = !dropped;
      mapping = Array.init n remap;
    } )

(* ------------------------------------------------------------------ *)
(* Context-sensitivity by duplication                                  *)
(* ------------------------------------------------------------------ *)

type dup_stats = {
  cloned_functions : int;  (** functions that received at least one clone *)
  clones : int;  (** total clones created *)
  added_assignments : int;
}

(* a mutable builder over an exploded database *)
type builder = {
  mutable bvars : Objfile.varinfo list;  (* reversed tail beyond original *)
  mutable bnext : int;
  mutable extra : Objfile.prim_rec list;  (* new assignments *)
}

let fresh_var b (vi : Objfile.varinfo) suffix =
  let id = b.bnext in
  b.bnext <- id + 1;
  b.bvars <-
    { vi with Objfile.vname = vi.Objfile.vname ^ suffix } :: b.bvars;
  id

(* base owner: block-scoped locals are tagged "f#3"; the function is the
   part before '#' *)
let base_owner s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(** Simulate one level of context-sensitivity for direct calls: for every
    function with [2..max_sites] call sites, clone its primitive
    assignments (and its local/argument/return variables) once per call
    site, and retarget each call site's argument/return copies to its own
    clone.  Self-recursive functions are left untouched (their calling
    contexts genuinely merge).  Indirect calls keep using the original
    (context-insensitive) body. *)
let duplicate_contexts ?(max_sites = 8) (db : Objfile.db) : Objfile.db * dup_stats =
  let n = Array.length db.Objfile.vars in
  let b = { bvars = []; bnext = n; extra = [] } in
  (* index the variables a function owns *)
  let owned : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (vi : Objfile.varinfo) ->
      let o = base_owner vi.Objfile.vowner in
      if o <> "" then begin
        let r =
          match Hashtbl.find_opt owned o with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.replace owned o r;
              r
        in
        r := i :: !r
      end)
    db.Objfile.vars;
  (* every prim, flattened, indexed by the variables it touches so the
     per-function scans below are proportional to the function's size *)
  let all_prims =
    List.concat (db.Objfile.statics :: Array.to_list db.Objfile.blocks)
  in
  let prims_of_var : Objfile.prim_rec list array = Array.make n [] in
  List.iter
    (fun (p : Objfile.prim_rec) ->
      prims_of_var.(p.Objfile.pdst) <- p :: prims_of_var.(p.Objfile.pdst);
      if p.Objfile.psrc <> p.Objfile.pdst then
        prims_of_var.(p.Objfile.psrc) <- p :: prims_of_var.(p.Objfile.psrc))
    all_prims;
  let removed : (Objfile.prim_rec, unit) Hashtbl.t = Hashtbl.create 64 in
  let stats = ref { cloned_functions = 0; clones = 0; added_assignments = 0 } in
  List.iter
    (fun (f : Objfile.fund_rec) ->
      let fvi = db.Objfile.vars.(f.Objfile.ffvar) in
      let fname = fvi.Objfile.vname in
      let body_vars =
        (match Hashtbl.find_opt owned fname with Some r -> !r | None -> [])
        @ Array.to_list f.Objfile.fargs
        @ (if f.Objfile.fret >= 0 then [ f.Objfile.fret ] else [])
      in
      let body_vars = List.filter (fun v -> v >= 0) body_vars in
      let in_body = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace in_body v ()) body_vars;
      let arg_set = Hashtbl.create 8 in
      Array.iter
        (fun a -> if a >= 0 then Hashtbl.replace arg_set a ())
        f.Objfile.fargs;
      (* all prims touching a body variable (deduplicated) *)
      let touching =
        let seen = Hashtbl.create 64 in
        List.concat_map (fun v -> prims_of_var.(v)) body_vars
        |> List.filter (fun p ->
               if Hashtbl.mem seen (Obj.repr p) then false
               else begin
                 Hashtbl.replace seen (Obj.repr p) ();
                 true
               end)
      in
      (* a crossing prim belongs to a call site: it writes an argument
         variable from outside the body (plain copies and address-of
         arguments alike), or it reads the return variable from outside.
         Everything else that touches the body is the body proper. *)
      let crossing (p : Objfile.prim_rec) =
        match p.Objfile.pkind with
        | Objfile.Pcopy | Objfile.Paddr ->
            (Hashtbl.mem arg_set p.Objfile.pdst
             && not (Hashtbl.mem in_body p.Objfile.psrc))
            || (p.Objfile.psrc = f.Objfile.fret
               && not (Hashtbl.mem in_body p.Objfile.pdst))
        | _ -> false
      in
      let site_prims, body_prims = List.partition crossing touching in
      let sites = Hashtbl.create 8 in
      List.iter
        (fun (p : Objfile.prim_rec) ->
          (* one call site per source line: the argument copies and the
             return-value copy of a call share the line but not the
             column.  Two calls of the same function on one line therefore
             share a context — a sound (if coarser) grouping. *)
          let key =
            Fmt.str "%s:%d" p.Objfile.ploc.Loc.file p.Objfile.ploc.Loc.line
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt sites key) in
          Hashtbl.replace sites key (p :: prev))
        site_prims;
      let site_list = Hashtbl.fold (fun _ ps acc -> ps :: acc) sites [] in
      let n_sites = List.length site_list in
      (* recursion check: a body-internal copy into the arguments or out
         of the return means f calls itself *)
      let recursive =
        List.exists
          (fun (p : Objfile.prim_rec) ->
            match p.Objfile.pkind with
            | Objfile.Pcopy | Objfile.Paddr ->
                (Hashtbl.mem arg_set p.Objfile.pdst
                && Hashtbl.mem in_body p.Objfile.psrc)
                || (p.Objfile.psrc = f.Objfile.fret
                   && Hashtbl.mem in_body p.Objfile.pdst
                   && p.Objfile.pdst <> f.Objfile.fret)
            | _ -> false)
          body_prims
      in
      if n_sites >= 2 && n_sites <= max_sites && not recursive then begin
        stats :=
          {
            !stats with
            cloned_functions = !stats.cloned_functions + 1;
          };
        List.iteri
          (fun site_idx site ->
            if site_idx > 0 then begin
              (* clone the body for this call site *)
              let suffix = Fmt.str "$%d" site_idx in
              let clone_map = Hashtbl.create 16 in
              List.iter
                (fun v ->
                  Hashtbl.replace clone_map v
                    (fresh_var b db.Objfile.vars.(v) suffix))
                body_vars;
              let remap v =
                match Hashtbl.find_opt clone_map v with
                | Some v' -> v'
                | None -> v
              in
              List.iter
                (fun (p : Objfile.prim_rec) ->
                  b.extra <-
                    {
                      p with
                      Objfile.pdst = remap p.Objfile.pdst;
                      psrc = remap p.Objfile.psrc;
                    }
                    :: b.extra;
                  stats :=
                    { !stats with added_assignments = !stats.added_assignments + 1 })
                body_prims;
              (* retarget this call site to the clone *)
              List.iter
                (fun (p : Objfile.prim_rec) ->
                  Hashtbl.replace removed p ();
                  b.extra <-
                    {
                      p with
                      Objfile.pdst = remap p.Objfile.pdst;
                      psrc = remap p.Objfile.psrc;
                    }
                    :: b.extra)
                site;
              stats := { !stats with clones = !stats.clones + 1 }
            end)
          site_list
      end)
    db.Objfile.fundefs;
  (* rebuild *)
  let vars =
    Array.append db.Objfile.vars (Array.of_list (List.rev b.bvars))
  in
  let nvars = Array.length vars in
  let keep p = not (Hashtbl.mem removed p) in
  let statics = ref (List.filter keep db.Objfile.statics) in
  let blocks = Array.make nvars [] in
  Array.iter
    (List.iter (fun p ->
         if keep p then blocks.(p.Objfile.psrc) <- p :: blocks.(p.Objfile.psrc)))
    db.Objfile.blocks;
  List.iter
    (fun (p : Objfile.prim_rec) ->
      match p.Objfile.pkind with
      | Objfile.Paddr -> statics := p :: !statics
      | _ -> blocks.(p.Objfile.psrc) <- p :: blocks.(p.Objfile.psrc))
    b.extra;
  Array.iteri (fun i l -> blocks.(i) <- List.rev l) blocks;
  ( { db with Objfile.vars; statics = List.rev !statics; blocks },
    !stats )
