(** The CLA link phase: merge object files into one database, linking
    global symbols and recomputing the indexes (Section 4). *)

type stats = {
  n_units : int;
  n_extern_merged : int;  (** extern symbol occurrences unified away *)
  n_vars_out : int;
}

(** Publish a stats record into the metrics registry (default
    {!Cla_obs.Metrics.default}) under [link.*]. *)
val publish_stats : ?reg:Cla_obs.Metrics.t -> stats -> unit

(** Link several object-file views into a single database.  Extern objects
    with the same canonical key are unified; unit-private objects are
    renumbered; dynamic blocks of merged objects are concatenated; Table 2
    statistics are summed.  Recorded as a ["link"] span and published as
    [link.*] metrics. *)
val link_views : Objfile.view list -> Objfile.db * stats

(** Link object files from disk and write the "executable" database
    (which has the same format as the inputs, as in the paper). *)
val link_files : output:string -> string list -> stats

(** Like {!link_files}, surfacing corrupt or unreadable inputs as
    structured diagnostics (bumping [load.corrupt]).  With [keep_going]
    the bad object files are skipped and the rest are linked; without it
    the first failure raises {!Diag.Fail}.  [None] means no input
    survived, in which case no output is written. *)
val link_files_result :
  ?keep_going:bool ->
  output:string ->
  string list ->
  stats option * Diag.t list
