(** Growable int arrays (OCaml 5.1 predates the stdlib [Dynarray]); the
    solver's adjacency lists and scratch buffers. *)

type t = { mutable data : int array; mutable len : int }

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
val push : t -> int -> unit
val clear : t -> unit
val iter : (int -> unit) -> t -> unit
val unsafe_get : t -> int -> int
val to_array : t -> int array
