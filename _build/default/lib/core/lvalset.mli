(** Shared sets of lvals: sorted, duplicate-free int arrays with
    hash-consing.

    "Since many lval sets are identical, a mechanism is implemented to
    share common lvals sets ... linked into a hash table, based on set
    size" (Section 5).  Sharing is what makes the dense benchmarks cheap:
    identical sets are physically equal, so unions short-circuit and a
    whole benchmark's millions of points-to relations may live in a few
    hundred distinct arrays. *)

type t = private int array

val empty : t
val cardinal : t -> int

(** Binary-search membership. *)
val mem : int -> t -> bool

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_list : t -> int list

(** Structural equality (physically shared sets compare in O(1)). *)
val equal : t -> t -> bool

(** The sharing pool.  One per solver; flushed at the start of each pass
    over the complex assignments, as in the paper. *)
type pool

val create_pool : unit -> pool
val flush_pool : pool -> unit

(** Return the pooled physical representative of a sorted, duplicate-free
    array. *)
val share : pool -> int array -> t

(** Sort + dedup the first [len] elements of a scratch buffer into a
    shared set. *)
val of_dyn : pool -> int array -> int -> t

val of_list : pool -> int list -> t

(** Merge-union; returns one of its arguments physically when the other is
    a subset. *)
val union : pool -> t -> t -> t

(** [iter_diff ~prev cur f] visits the elements of [cur] not in [prev]
    (both sorted).  Points-to sets grow monotonically, so drivers remember
    the set they last processed and visit just the delta — difference
    propagation. *)
val iter_diff : prev:t -> t -> (int -> unit) -> unit
