(** High-level façade: the full compile-link-analyze pipeline in one
    call.  This is the entry point the examples, tools and tests use. *)

(** Which points-to solver to run over the linked database.  All four are
    implemented on the same object-file substrate — the architecture's
    selling point (Section 4). *)
type algorithm =
  | Pretransitive  (** the paper's algorithm (Section 5) — default *)
  | Worklist  (** transitively-closed Andersen baseline *)
  | Bitvector  (** bit-vector subset baseline *)
  | Steensgaard  (** unification-based baseline *)

val algorithm_name : algorithm -> string
val algorithm_of_string : string -> algorithm option

(** Compile each [(name, source)] pair and link the results, all in
    memory. *)
val compile_link :
  ?options:Compilep.options -> (string * string) list -> Objfile.view

(** Compile and link C files from disk. *)
val compile_link_files :
  ?options:Compilep.options -> string list -> Objfile.view

(** Run the selected points-to analysis over a linked view.  [budget]
    bounds the retained assignments kept in core (pre-transitive solver
    only; see {!Loader.create}). *)
val points_to :
  ?algorithm:algorithm ->
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  Objfile.view ->
  Solution.t

(** Like {!points_to} with the pre-transitive solver, returning the full
    result: pass count, loader statistics, graph statistics, and the
    retained complex assignments the dependence analysis reuses. *)
val points_to_result :
  ?config:Pretrans.config ->
  ?demand:bool ->
  ?budget:int ->
  Objfile.view ->
  Andersen.result
