(** CRC-32 (IEEE 802.3 polynomial, reflected), pure OCaml — the checksum
    used by the CLA2 object-file format for per-section integrity. *)

(** Feed [len] bytes of [s] starting at [pos] into a running CRC; start
    from [0] and chain the return value for incremental computation. *)
val update : int -> string -> pos:int -> len:int -> int

(** CRC-32 of a substring.  Raises [Invalid_argument] if the range is
    outside [s]. *)
val sub : string -> pos:int -> len:int -> int

(** CRC-32 of a whole string. *)
val string : string -> int
