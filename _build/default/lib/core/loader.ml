(** Demand loader over a linked object-file view (the "analyze" phase's
    I/O layer, Section 4).

    The static section is always loaded; dynamic blocks are decoded only
    when the analysis asks for them, and the caller may discard decoded
    records and re-read them later ("once we have read information from the
    object file we can simply discard it and re-load it later if
    necessary").  The loader keeps the Table 3 accounting: assignments
    loaded, assignments retained in core, assignments in the file. *)

open Cla_ir

type t = {
  view : Objfile.view;
  loaded_flag : Bytes.t;  (* per var: block loaded at least once *)
  mutable loaded : int;  (* primitive assignments decoded *)
  mutable in_core : int;  (* primitive assignments retained in memory *)
  mutable reloads : int;  (* blocks decoded again after a discard *)
}

let create (view : Objfile.view) =
  {
    view;
    loaded_flag = Bytes.make (max 1 (Objfile.n_vars view)) '\000';
    loaded = 0;
    in_core = 0;
    reloads = 0;
  }

(** The address-of assignments; counted as loaded (they are always read,
    then discarded per the Section 6 strategy). *)
let statics t =
  t.loaded <- t.loaded + Array.length t.view.Objfile.rstatics;
  t.view.Objfile.rstatics

(** Decode the block of [src].  Every call reads from the file bytes; the
    second and later calls on the same block count as re-loads. *)
let block t src : Objfile.prim_rec list =
  let prims = Objfile.read_block t.view src in
  let n = List.length prims in
  if n > 0 then begin
    t.loaded <- t.loaded + n;
    if Bytes.get t.loaded_flag src <> '\000' then t.reloads <- t.reloads + 1
    else Bytes.set t.loaded_flag src '\001'
  end;
  prims

(** Record that [n] decoded assignments are being kept in memory (complex
    assignments are retained; [x = y] and [x = &y] are discarded). *)
let retain t n = t.in_core <- t.in_core + n

type stats = {
  s_in_core : int;
  s_loaded : int;
  s_in_file : int;
  s_reloads : int;
}

let stats t =
  {
    s_in_core = t.in_core;
    s_loaded = t.loaded;
    s_in_file = Prim.total t.view.Objfile.rmeta.Objfile.mcounts;
    s_reloads = t.reloads;
  }

(** Publish a stats record into the metrics registry under
    [load.blocks.*] — Table 3's block-residency accounting. *)
let publish_stats ?reg (s : stats) =
  let set k v = Cla_obs.Metrics.set ?reg ("load.blocks." ^ k) v in
  set "in_core" s.s_in_core;
  set "loaded" s.s_loaded;
  set "in_file" s.s_in_file;
  set "reloads" s.s_reloads

(** Operations through which points-to information survives: only these
    copies are relevant to aliasing, and the loader skips the rest
    ("non-pointer arithmetic assignments are usually ignored", Section 6). *)
let pointer_relevant_op = function
  | "+" | "-" | "u+" | "u-" | "cast" | "?:" -> true
  | _ -> false

let relevant_to_points_to (p : Objfile.prim_rec) =
  match (p.Objfile.pkind, p.Objfile.pop) with
  | Objfile.Pcopy, Some (op, _) -> pointer_relevant_op op
  | _ -> true
