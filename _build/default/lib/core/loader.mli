(** Demand loader over a linked object-file view (the analyze phase's I/O
    layer, Section 4).

    The static section is always loaded; dynamic blocks are decoded only
    when the analysis asks, and decoded records may be discarded and
    re-read later.  The loader keeps Table 3's accounting: assignments
    loaded, assignments retained in core, assignments in the file. *)

type t

val create : Objfile.view -> t

(** The address-of assignments — always read, counted as loaded. *)
val statics : t -> Objfile.prim_rec array

(** Decode the dynamic block of a variable (the assignments in which it is
    the source).  Each call re-reads the underlying bytes; repeat calls
    count as re-loads (the load-and-throw-away strategy). *)
val block : t -> int -> Objfile.prim_rec list

(** Record that [n] decoded assignments are being kept in memory (complex
    assignments are retained; [x = y] and [x = &y] are discarded after
    use, Section 6). *)
val retain : t -> int -> unit

type stats = {
  s_in_core : int;  (** assignments retained in memory *)
  s_loaded : int;  (** assignments decoded from the file *)
  s_in_file : int;  (** total assignments in the database *)
  s_reloads : int;  (** blocks decoded again after a discard *)
}

val stats : t -> stats

(** Publish a stats record into the metrics registry (default
    {!Cla_obs.Metrics.default}) under [load.blocks.*] — Table 3's
    block-residency accounting. *)
val publish_stats : ?reg:Cla_obs.Metrics.t -> stats -> unit

(** Operations through which points-to information survives ([+], [-],
    casts, [?:]); everything else is skipped by the points-to loader
    ("non-pointer arithmetic assignments are usually ignored"). *)
val pointer_relevant_op : string -> bool

val relevant_to_points_to : Objfile.prim_rec -> bool
