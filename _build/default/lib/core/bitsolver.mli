(** Baseline: subset-based points-to analysis over bit vectors — the
    paper mentions "an implementation based on bit-vectors" among the
    analyses built on the CLA substrate (Section 4).

    The location space is compressed to the address-taken objects; the
    solver iterates all constraints to a fixpoint.  Simple and a useful
    differential oracle for the pre-transitive solver. *)

val solve : Objfile.view -> Solution.t
