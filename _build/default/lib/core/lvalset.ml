(** Shared sets of lvals, represented as sorted, duplicate-free int arrays.

    "Since many lval sets are identical, a mechanism is implemented to
    share common lvals sets.  Such sets are implemented as ordered lists,
    and are linked into a hash table, based on set size." (Section 5)

    The hash-cons pool is per-solver and is flushed at the beginning of
    each pass through the complex assignments, exactly as in the paper
    (after unifications, stale sets would otherwise pin memory). *)

type t = int array

let empty : t = [||]
let cardinal (s : t) = Array.length s
let mem x (s : t) =
  let lo = ref 0 and hi = ref (Array.length s) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length s && s.(!lo) = x

let iter = Array.iter
let fold = Array.fold_left
let to_list (s : t) = Array.to_list s
let equal (a : t) (b : t) = a = b

(** Iterate the elements of [cur] that are not in [prev] (both sorted).
    Points-to sets only grow, so drivers remember the set they last
    processed and visit just the delta — difference propagation. *)
let iter_diff ~prev (cur : t) f =
  let np = Array.length prev and nc = Array.length cur in
  if np = 0 then Array.iter f cur
  else begin
    let i = ref 0 and j = ref 0 in
    while !j < nc do
      if !i >= np then begin
        f cur.(!j);
        incr j
      end
      else if prev.(!i) < cur.(!j) then incr i
      else if prev.(!i) = cur.(!j) then begin
        incr i;
        incr j
      end
      else begin
        f cur.(!j);
        incr j
      end
    done
  end

(** The sharing pool: size-bucketed, content-hashed. *)
type pool = { mutable tbl : (int, t list ref) Hashtbl.t; mutable hits : int; mutable misses : int }

let create_pool () = { tbl = Hashtbl.create 256; hits = 0; misses = 0 }
let flush_pool p = p.tbl <- Hashtbl.create 256

let hash_arr (a : int array) =
  let h = ref (Array.length a) in
  Array.iter (fun x -> h := (!h * 31) + x + 1) a;
  !h land max_int

(** Return the pooled physical representative of [a] (which must already be
    sorted and duplicate-free). *)
let share pool (a : int array) : t =
  if Array.length a = 0 then empty
  else begin
    let key = hash_arr a in
    match Hashtbl.find_opt pool.tbl key with
    | Some bucket -> (
        match List.find_opt (fun b -> b == a || b = a) !bucket with
        | Some b ->
            pool.hits <- pool.hits + 1;
            b
        | None ->
            pool.misses <- pool.misses + 1;
            bucket := a :: !bucket;
            a)
    | None ->
        pool.misses <- pool.misses + 1;
        Hashtbl.add pool.tbl key (ref [ a ]);
        a
  end

(** Sort + dedup a scratch buffer of candidate members into a shared set. *)
let of_dyn pool (buf : int array) (len : int) : t =
  if len = 0 then empty
  else begin
    let a = Array.sub buf 0 len in
    Array.sort compare a;
    let w = ref 1 in
    for r = 1 to len - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    share pool (if !w = len then a else Array.sub a 0 !w)
  end

let of_list pool l =
  let a = Array.of_list l in
  of_dyn pool a (Array.length a)

(** Merge-union of two shared sets. *)
let union pool (a : t) (b : t) : t =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else if a == b then a
  else begin
    let out = Array.make (Array.length a + Array.length b) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < Array.length a && !j < Array.length b do
      let x = a.(!i) and y = b.(!j) in
      if x < y then (out.(!k) <- x; incr i)
      else if y < x then (out.(!k) <- y; incr j)
      else (out.(!k) <- x; incr i; incr j);
      incr k
    done;
    while !i < Array.length a do out.(!k) <- a.(!i); incr i; incr k done;
    while !j < Array.length b do out.(!k) <- b.(!j); incr j; incr k done;
    if !k = Array.length a then a
    else if !k = Array.length b then b
    else share pool (Array.sub out 0 !k)
  end
