lib/core/dynarr.ml: Array
