lib/core/bitsolver.ml: Array Bytes Char Dynarr Hashtbl List Loader Lvalset Objfile Solution
