lib/core/compilep.ml: Array Cla_cfront Cla_ir Cla_obs Cparser Cpp Diag Fmt Hashtbl List Normalize Objfile Option Prim Prog String Var
