lib/core/compilep.ml: Array Cla_cfront Cla_ir Cparser Cpp Fmt Hashtbl List Normalize Objfile Option Prim Prog String Var
