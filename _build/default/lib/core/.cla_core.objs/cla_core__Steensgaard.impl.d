lib/core/steensgaard.ml: Array Dynarr Hashtbl List Loader Lvalset Objfile Queue Solution
