lib/core/binio.mli: Buffer Bytes
