lib/core/worklist.mli: Objfile Solution
