lib/core/intset.mli:
