lib/core/crc32.mli:
