lib/core/andersen.mli: Bytes Cla_ir Cla_obs Hashtbl Loader Lvalset Objfile Pretrans Solution
