lib/core/andersen.mli: Bytes Cla_ir Hashtbl Loader Lvalset Objfile Pretrans Solution
