lib/core/pretrans.ml: Array Dynarr Intset List Lvalset
