lib/core/pretrans.ml: Array Cla_obs Dynarr Intset List Lvalset
