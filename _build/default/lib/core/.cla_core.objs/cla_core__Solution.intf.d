lib/core/solution.mli: Cla_ir Format Lvalset Objfile
