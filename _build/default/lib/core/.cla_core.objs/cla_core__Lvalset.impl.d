lib/core/lvalset.ml: Array Hashtbl List
