lib/core/objfile.ml: Array Binio Buffer Bytes Cla_ir Fmt Hashtbl Int64 List Loc Prim Strength String Strtab Var
