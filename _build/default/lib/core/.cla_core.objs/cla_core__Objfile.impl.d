lib/core/objfile.ml: Array Binio Buffer Bytes Cla_ir Crc32 Diag Fmt Hashtbl Int64 List Loc Prim Strength String Strtab Var
