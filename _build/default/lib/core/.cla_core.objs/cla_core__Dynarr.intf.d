lib/core/dynarr.mli:
