lib/core/strtab.ml: Array Binio Hashtbl List
