lib/core/transform.mli: Objfile
