lib/core/pipeline.mli: Andersen Compilep Objfile Pretrans Solution
