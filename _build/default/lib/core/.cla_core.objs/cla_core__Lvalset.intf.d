lib/core/lvalset.mli:
