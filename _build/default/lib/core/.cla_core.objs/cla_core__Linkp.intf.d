lib/core/linkp.mli: Cla_obs Objfile
