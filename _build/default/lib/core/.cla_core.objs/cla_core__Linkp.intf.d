lib/core/linkp.mli: Cla_obs Diag Objfile
