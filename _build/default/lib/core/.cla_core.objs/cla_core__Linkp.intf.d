lib/core/linkp.mli: Objfile
