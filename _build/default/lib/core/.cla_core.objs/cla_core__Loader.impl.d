lib/core/loader.ml: Array Bytes Cla_ir Cla_obs List Objfile Prim
