lib/core/loader.ml: Array Bytes Cla_ir List Objfile Prim
