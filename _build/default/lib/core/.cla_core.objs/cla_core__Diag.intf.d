lib/core/diag.mli: Cla_ir Format Loc
