lib/core/andersen.ml: Array Bytes Cla_ir Cla_obs Hashtbl List Loader Lvalset Objfile Pretrans Solution
