lib/core/andersen.ml: Array Bytes Cla_ir Hashtbl List Loader Lvalset Objfile Pretrans Solution
