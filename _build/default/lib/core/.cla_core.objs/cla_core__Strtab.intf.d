lib/core/strtab.mli: Binio
