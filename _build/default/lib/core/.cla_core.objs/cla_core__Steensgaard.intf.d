lib/core/steensgaard.mli: Objfile Solution
