lib/core/transform.ml: Array Cla_ir Fmt Hashtbl List Loc Obj Objfile Option String Var
