lib/core/pipeline.ml: Andersen Bitsolver Compilep Linkp List Objfile Solution Steensgaard Worklist
