lib/core/pipeline.ml: Andersen Bitsolver Cla_obs Compilep Linkp List Objfile Solution Steensgaard Worklist
