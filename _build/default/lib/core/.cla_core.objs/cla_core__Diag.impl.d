lib/core/diag.ml: Binio Cla_cfront Cla_ir Cla_obs Fmt Lexing List Loc
