lib/core/loader.mli: Cla_obs Objfile
