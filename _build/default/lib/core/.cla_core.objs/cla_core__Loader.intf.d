lib/core/loader.mli: Objfile
