lib/core/intset.ml: Array
