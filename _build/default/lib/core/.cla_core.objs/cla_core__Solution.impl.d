lib/core/solution.ml: Array Cla_ir Fmt Lvalset Objfile Printf Var
