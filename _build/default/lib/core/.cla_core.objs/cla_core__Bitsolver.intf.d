lib/core/bitsolver.mli: Objfile Solution
