lib/core/objfile.mli: Cla_ir Loc Prim Strength Var
