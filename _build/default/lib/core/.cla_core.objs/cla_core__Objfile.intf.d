lib/core/objfile.mli: Cla_ir Diag Loc Prim Strength Var
