lib/core/linkp.ml: Array Cla_ir Hashtbl List Loc Objfile Prim Var
