lib/core/linkp.ml: Array Cla_ir Cla_obs Hashtbl List Loc Objfile Prim Var
