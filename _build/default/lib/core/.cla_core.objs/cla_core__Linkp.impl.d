lib/core/linkp.ml: Array Cla_ir Cla_obs Diag Hashtbl List Loc Objfile Prim Var
