lib/core/compilep.mli: Cla_cfront Cla_ir Diag Objfile
