lib/core/crc32.ml: Array Char Lazy String
