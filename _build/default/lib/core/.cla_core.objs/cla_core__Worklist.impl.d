lib/core/worklist.ml: Array Bytes Dynarr Hashtbl Intset List Loader Lvalset Objfile Option Queue Solution
