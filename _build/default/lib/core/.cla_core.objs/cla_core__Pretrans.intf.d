lib/core/pretrans.mli: Cla_obs Lvalset
