lib/core/pretrans.mli: Lvalset
