lib/core/binio.ml: Buffer Bytes Char String
