lib/core/binio.ml: Buffer Bytes Char Fmt String
