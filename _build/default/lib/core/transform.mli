(** Database-to-database transformers (Section 4: "we can write
    pre-analysis optimizers as database to database transformers").

    Both consume and produce {!Objfile.db} values, so they compose with
    each other and slot between the link and analyze phases without any
    change to the compile, link or analyze code — the paper's point. *)

type subst_stats = {
  merged_vars : int;  (** variables eliminated *)
  dropped_assignments : int;
  mapping : int array;  (** old variable id -> new variable id *)
}

(** Offline variable substitution in the style of the paper's reference
    [21] (Rountev & Chandra, PLDI 2000): merge a variable into its unique
    copy source when the two provably have equal points-to sets — the
    variable's only inflow is that single plain copy, it is never
    address-taken, no load targets it, and it is not a standardized
    argument/return variable.  The solution on surviving variables is
    unchanged (property-tested). *)
val substitute_variables : Objfile.db -> Objfile.db * subst_stats

type dup_stats = {
  cloned_functions : int;
  clones : int;
  added_assignments : int;
}

(** Simulate one level of context-sensitivity for direct calls: clone a
    function's primitive assignments (and its locals and standardized
    argument/return variables) once per call site, retargeting each call
    site to its own clone.  Self-recursive functions and functions with
    more than [max_sites] call sites are left untouched; indirect calls
    keep using the original body.  Call sites on the same source line
    share a context (sound, coarser). *)
val duplicate_contexts :
  ?max_sites:int -> Objfile.db -> Objfile.db * dup_stats
