(** Growable int arrays (OCaml 5.1 predates [Dynarray]). *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let length t = t.len
let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarr.get";
  t.data.(i)

let push t x =
  if t.len = Array.length t.data then begin
    let d = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 d 0 t.len;
    t.data <- d
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let unsafe_get t i = Array.unsafe_get t.data i
let to_array t = Array.sub t.data 0 t.len
