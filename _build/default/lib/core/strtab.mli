(** Interned string table — the object file's "string section"
    (Figure 4).  Names, type spellings, file names and operators are
    stored once and referenced by index. *)

type t

val create : unit -> t

(** Intern a string, returning its stable index. *)
val intern : t -> string -> int

val size : t -> int
val to_array : t -> string array
val write : Binio.writer -> t -> unit

(** Read back as a plain array for direct indexing. *)
val read : Binio.reader -> string array
