(** High-level façade: the full compile-link-analyze pipeline in one call.

    This is the API the examples and tools use:

    {[
      let view =
        Pipeline.compile_link
          [ ("a.c", source_a); ("b.c", source_b) ]
      in
      let sol = Pipeline.points_to view in
      Lvalset.to_list (Solution.points_to sol x)
    ]} *)

type algorithm =
  | Pretransitive  (** the paper's algorithm (Section 5) — default *)
  | Worklist  (** transitively-closed Andersen baseline *)
  | Bitvector  (** bit-vector subset baseline *)
  | Steensgaard  (** unification-based baseline *)

let algorithm_name = function
  | Pretransitive -> "pretransitive"
  | Worklist -> "worklist"
  | Bitvector -> "bitvector"
  | Steensgaard -> "steensgaard"

let algorithm_of_string = function
  | "pretransitive" | "pretrans" -> Some Pretransitive
  | "worklist" -> Some Worklist
  | "bitvector" | "bitvec" -> Some Bitvector
  | "steensgaard" | "steens" -> Some Steensgaard
  | _ -> None

(** Compile each (name, source) pair and link the results, all in memory. *)
let compile_link ?(options = Compilep.default_options) (sources : (string * string) list) :
    Objfile.view =
  let views =
    List.map
      (fun (file, src) ->
        let db = Compilep.compile_string ~options ~file src in
        Objfile.view_of_string (Objfile.write db))
      sources
  in
  let db, _stats = Linkp.link_views views in
  Objfile.view_of_string (Objfile.write db)

(** Compile-link from disk paths. *)
let compile_link_files ?(options = Compilep.default_options) paths : Objfile.view =
  let views =
    List.map
      (fun path -> Objfile.view_of_string (Objfile.write (Compilep.compile_file ~options path)))
      paths
  in
  let db, _stats = Linkp.link_views views in
  Objfile.view_of_string (Objfile.write db)

(** Run the selected points-to analysis over a linked view.  Each solver
    runs under an ["analyze"] span (the pre-transitive solver records its
    own, with per-pass children). *)
let points_to ?(algorithm = Pretransitive) ?config ?demand ?budget
    (view : Objfile.view) : Solution.t =
  match algorithm with
  | Pretransitive ->
      (Andersen.solve ?config ?demand ?budget view).Andersen.solution
  | Worklist ->
      Cla_obs.Obs.with_span "analyze" ~label:"worklist" (fun () ->
          Worklist.solve view)
  | Bitvector ->
      Cla_obs.Obs.with_span "analyze" ~label:"bitvector" (fun () ->
          Bitsolver.solve view)
  | Steensgaard ->
      Cla_obs.Obs.with_span "analyze" ~label:"steensgaard" (fun () ->
          Steensgaard.solve view)

(** Like {!points_to} with the pre-transitive solver, returning the full
    result (pass count, loader statistics, graph statistics). *)
let points_to_result ?config ?demand ?budget view : Andersen.result =
  Andersen.solve ?config ?demand ?budget view
