(** Andersen's analysis over the pre-transitive graph, with demand-driven
    loading from the CLA database — the paper's headline configuration.

    Most callers want {!solve}; {!init} and {!pass} expose the iteration
    (Figure 5's outer loop) for benchmarks that meter each pass. *)

(** A retained complex assignment.  [Kstore]: for each new [&z] in
    [getLvals(cptr)], add edge [z -> cother].  [Kload]: add
    [cother -> z] ([cother] is the dereference node [n_*y]).  [cseen]
    remembers the set processed last pass (difference propagation). *)
type ckind = Kstore | Kload

type complex = {
  ckind : ckind;
  cptr : int;
  cother : int;
  mutable cseen : Lvalset.t;
}

(** In-flight analysis state. *)
type t = {
  g : Pretrans.t;  (** the pre-transitive constraint graph *)
  loader : Loader.t;
  view : Objfile.view;
  demand : bool;
  active : Bytes.t;
  mutable complexes : complex list;  (** kept in core (Section 6) *)
  mutable n_complex : int;
  deref_nodes : (int, int) Hashtbl.t;
  fundef_by_var : (int, Objfile.fund_rec) Hashtbl.t;
  linked : (int, unit) Hashtbl.t;
  mutable passes : int;
  mutable retained : Objfile.prim_rec list;
  mutable linked_copies : (int * int * Cla_ir.Loc.t) list;
  iseen : Lvalset.t array;
}

(** Load the static section (and, in demand mode, the blocks it activates)
    and set up the iteration state.  [demand=false] loads every block up
    front. *)
val init : ?config:Pretrans.config -> ?demand:bool -> Objfile.view -> t

(** One pass of Figure 5's iteration algorithm (complex assignments, then
    analysis-time indirect-call linking).  Returns [true] if the graph
    changed — iterate until it does not. *)
val pass : t -> bool

type result = {
  solution : Solution.t;
  passes : int;
  loader_stats : Loader.stats;
  graph_stats : Pretrans.stats;
  retained : Objfile.prim_rec list;
      (** complex assignments kept in core; input to the dependence
          analysis *)
  linked_copies : (int * int * Cla_ir.Loc.t) list;
      (** analysis-time copies added while linking indirect calls *)
}

(** Run to fixpoint and extract the points-to set of every variable. *)
val solve :
  ?config:Pretrans.config -> ?demand:bool -> Objfile.view -> result
