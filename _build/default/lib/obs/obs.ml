(** Façade over the observability layer.

    Instrumented code does

    {[ Cla_obs.Obs.with_span "link" (fun () -> ...) ]}

    and pays one boolean load when no sink has called {!enable}.  Sinks
    ([--stats], [--stats-json], [--trace], the bench harness) call
    {!enable}/{!reset}, run the pipeline, then read {!Span.roots} and
    {!Metrics.snapshot} through {!Export} or {!Trace}. *)

let enable () = Span.set_enabled true
let disable () = Span.set_enabled false
let enabled = Span.enabled

(** Drop recorded spans and clear the default metrics registry. *)
let reset () =
  Span.reset ();
  Metrics.reset ()

let with_span = Span.with_span
