(** Export: the metrics registry plus the span tree, as a human-readable
    table ([--stats]) or a machine-readable JSON document
    ([--stats-json]). *)

val metric_json : Metrics.value -> Json.t
val span_json : Span.t -> Json.t

(** The full export: [{"metrics": {...}, "spans": [...]}], metrics sorted
    by name, spans in execution order.  [reg] defaults to
    {!Metrics.default}. *)
val to_json : ?reg:Metrics.t -> unit -> Json.t

(** Write {!to_json} (plus trailing newline) to [path]. *)
val write_json : ?reg:Metrics.t -> string -> unit

(** Render the span tree and the registry as an indented text table. *)
val pp_table : ?reg:Metrics.t -> Format.formatter -> unit -> unit
