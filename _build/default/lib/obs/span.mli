(** Nestable named timers over the compile-link-analyze pipeline.

    A span records wall time, user CPU time ([Unix.times]) and GC
    minor/major word deltas between open and close, plus its children in
    execution order.  When recording is off (the default), {!with_span}
    costs a single boolean load — instrumented code paths are free unless
    a sink switched recording on. *)

type t = {
  name : string;
  label : string option;  (** free-form qualifier (file name, pass number) *)
  start_s : float;  (** wall-clock open time (epoch seconds) *)
  wall_s : float;
  user_s : float;
  gc_minor_words : float;
  gc_major_words : float;
  children : t list;  (** execution order *)
}

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Drop all recorded and in-flight spans. *)
val reset : unit -> unit

(** [with_span name f] runs [f], recording a span around it when enabled.
    Exceptions propagate; the span is still closed. *)
val with_span : ?label:string -> string -> (unit -> 'a) -> 'a

(** Completed top-level spans, in execution order. *)
val roots : unit -> t list

(** First span named [name], depth-first over a span forest. *)
val find : string -> t list -> t option

(** Total wall time of the top-level spans named [name]. *)
val total_wall : string -> t list -> float
