(** Minimal JSON values: enough to emit the observability exports
    ([--stats-json], [--trace], [BENCH_pipeline.json]) and to parse them
    back for round-trip tests — no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Floats must stay valid JSON ([nan]/[inf] are not) and must parse back
   as floats (always keep a '.' or exponent). *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.6g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec emit ~indent b level (j : t) =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          emit ~indent b (level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          emit ~indent b (level + 1) v)
        fields;
      nl ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = true) j =
  let b = Buffer.create 1024 in
  emit ~indent b 0 j;
  Buffer.contents b

let write_file path j =
  let oc = open_out path in
  output_string oc (to_string j);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let of_string s : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* BMP only; codes < 256 emitted as bytes, others replaced *)
              if code < 256 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      try Float (float_of_string text) with _ -> fail "bad number"
    else try Int (int_of_string text) with _ -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and bench post-processing)                     *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || Float.abs (x -. y) < 1e-9
  | Str x, Str y -> x = y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2)
           x y
  | _ -> false
