lib/obs/export.mli: Format Json Metrics Span
