lib/obs/trace.ml: Float Json List Span
