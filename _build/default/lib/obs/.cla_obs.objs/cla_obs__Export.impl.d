lib/obs/export.ml: Fmt Json List Metrics Span String
