lib/obs/obs.mli:
