lib/obs/json.ml: Buffer Char Float List Printf String
