lib/obs/obs.ml: Metrics Span
