lib/obs/metrics.mli:
