lib/obs/span.ml: Gc List Unix
