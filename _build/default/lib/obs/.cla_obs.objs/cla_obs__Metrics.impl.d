lib/obs/metrics.ml: Hashtbl List Printf
