lib/obs/span.mli:
