lib/obs/json.mli:
