lib/obs/trace.mli: Json Span
