(** Deterministic splitmix64 PRNG.

    Workload generation must be reproducible across runs and machines
    (benchmarks compare configurations on the *same* synthetic program), so
    we avoid the stdlib's self-seeding generator. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

(** True with probability [p]. *)
let flip t p = float_of_int (int t 1_000_000) < p *. 1_000_000.

(** Pick a uniform element of a non-empty array. *)
let choose t arr = arr.(int t (Array.length arr))

(** Power-law-ish pick biased toward low indices: index
    [n * u^k] for u uniform — models hub variables that real code bases
    have (a few central objects referenced everywhere). *)
let biased t n k =
  if n <= 0 then invalid_arg "Rng.biased";
  let u = float_of_int (int t 1_000_000) /. 1_000_000. in
  let x = int_of_float (float_of_int n *. (u ** k)) in
  if x >= n then n - 1 else x
