(** Random constraint-program generator (database level, no C involved).

    Used by the property-based tests — on any generated program the
    pre-transitive, worklist and bit-vector solvers must agree exactly and
    Steensgaard's must over-approximate — and by the ablation benchmarks,
    which need dense pure-solver workloads without parse cost. *)

type params = {
  n_vars : int;
  n_addr : int;
  n_copy : int;
  n_store : int;
  n_load : int;
  n_deref2 : int;
  n_funcs : int;  (** functions with standardized arg/ret variables *)
  n_indirect : int;  (** indirect call sites *)
}

val default_params : params

(** Generate a database deterministically from the seed. *)
val generate : ?params:params -> int64 -> Cla_core.Objfile.db

(** Generate and roundtrip through serialization (what solvers consume). *)
val view : ?params:params -> int64 -> Cla_core.Objfile.view
