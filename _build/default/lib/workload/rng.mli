(** Deterministic splitmix64 PRNG — workloads must be reproducible across
    runs and machines. *)

type t

val create : int64 -> t
val next : t -> int64

(** Uniform int in [\[0, bound)]. *)
val int : t -> int -> int

(** True with probability [p]. *)
val flip : t -> float -> bool

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** Power-law pick biased toward low indices (index [n·u^k]): models the
    hub variables real code bases have. *)
val biased : t -> int -> float -> int
