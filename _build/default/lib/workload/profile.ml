(** Benchmark profiles from the paper's Table 2, with the Table 3/Table 4
    reference results for side-by-side reporting.

    We do not have the original code bases (nethack..gcc came from the
    authors of other papers; lucent is proprietary), so the benchmark
    harness generates synthetic C programs whose primitive-assignment mix
    matches each benchmark's Table 2 row — the quantities that drive the
    solver's cost (see DESIGN.md, "Substitutions"). *)

open Cla_ir

(** Reference row of Table 3 (field-based analysis results). *)
type table3 = {
  t3_pointer_vars : int;
  t3_relations : int;  (** total points-to set size *)
  t3_real_s : float;
  t3_user_s : float;
  t3_size_mb : float;
  t3_in_core : int;
  t3_loaded : int;
  t3_in_file : int;
}

(** Reference row of Table 4 (field-independent, preliminary). *)
type table4 = {
  t4_pointer_vars : int;
  t4_relations : int;
  t4_user_s : float;
  t4_size_mb : float;
}

type t = {
  name : string;
  loc_display : string;  (** Table 2's source-LOC column (or "-") *)
  preproc_display : string;  (** Table 2's preprocessed-LOC column *)
  variables : int;  (** Table 2 "program variables" *)
  counts : Prim.counts;  (** Table 2 per-kind assignment counts *)
  (* shape knobs for the generator (hub structure drives how large the
     points-to sets grow — compare emacs/gimp vs nethack/gcc) *)
  hubbiness : float;  (** exponent for hub-biased variable choice *)
  n_indirect : int;  (** indirect call sites *)
  scale : float;  (** optional global scale-down for quick runs *)
  table3 : table3;
  table4 : table4;
}

let mk name loc pre vars (c, a, s, d2, l) hub ind t3 t4 =
  let t3_pointer_vars, t3_relations, t3_real_s, t3_user_s, t3_size_mb, t3_in_core, t3_loaded, t3_in_file = t3 in
  let t4_pointer_vars, t4_relations, t4_user_s, t4_size_mb = t4 in
  {
    name;
    loc_display = loc;
    preproc_display = pre;
    variables = vars;
    counts = { Prim.n_copy = c; n_addr = a; n_store = s; n_deref2 = d2; n_load = l };
    hubbiness = hub;
    n_indirect = ind;
    scale = 1.0;
    table3 =
      { t3_pointer_vars; t3_relations; t3_real_s; t3_user_s; t3_size_mb;
        t3_in_core; t3_loaded; t3_in_file };
    table4 = { t4_pointer_vars; t4_relations; t4_user_s; t4_size_mb };
  }

(* Table 2 / Table 3 / Table 4 rows, verbatim from the paper. *)
let nethack =
  mk "nethack" "-" "44.1K" 3856 (9118, 1115, 30, 34, 105) 1.05 20
    (1018, 7_000, 0.03, 0.01, 5.2, 114, 5933, 10402)
    (1714, 97_000, 0.03, 5.2)

let burlap =
  mk "burlap" "-" "74.6K" 6859 (14202, 1049, 1160, 714, 1897) 1.9 60
    (3332, 201_000, 0.08, 0.03, 5.4, 3201, 12907, 19022)
    (2903, 323_000, 0.21, 5.9)

let vortex =
  mk "vortex" "-" "170.3K" 11395 (24218, 7458, 353, 231, 1866) 1.15 80
    (4359, 392_000, 0.15, 0.11, 5.7, 1792, 15411, 34126)
    (4655, 164_000, 0.09, 5.7)

let emacs =
  mk "emacs" "-" "93.5K" 12587 (31345, 3461, 614, 154, 1029) 3.6 120
    (8246, 11_232_000, 0.54, 0.51, 6.0, 1560, 28445, 36603)
    (8314, 14_643_000, 1.05, 6.7)

let povray =
  mk "povray" "-" "175.5K" 12570 (29565, 4009, 2431, 1190, 3085) 1.1 90
    (6126, 141_000, 0.11, 0.09, 5.7, 5886, 27566, 40280)
    (5759, 1_375_000, 0.39, 6.6)

let gcc =
  mk "gcc" "-" "199.8K" 18749 (62556, 3434, 1673, 585, 1467) 1.25 100
    (11289, 123_000, 0.20, 0.17, 6.0, 2732, 53805, 69715)
    (10984, 408_000, 0.65, 8.8)

let gimp =
  mk "gimp" "440K" "7486.7K" 131552 (303810, 25578, 5943, 2397, 6428) 2.2 400
    (45091, 15_298_000, 1.05, 1.00, 12.1, 8377, 144534, 344156)
    (39888, 79_603_000, 30.12, 18.1)

let lucent =
  mk "lucent" "1.3M" "-" 96509 (270148, 72355, 1562, 991, 3989) 1.4 200
    (22360, 3_865_000, 0.46, 0.38, 8.8, 4281, 101856, 349045)
    (26085, 19_665_000, 137.20, 59.0)

let all = [ nethack; burlap; vortex; emacs; povray; gcc; gimp; lucent ]

let find name = List.find_opt (fun p -> p.name = name) all

(** Uniformly scale a profile down (quick test runs). *)
let scaled f p =
  let s x = max 1 (int_of_float (float_of_int x *. f)) in
  {
    p with
    name = p.name;
    scale = f;
    variables = s p.variables;
    counts =
      {
        Prim.n_copy = s p.counts.Prim.n_copy;
        n_addr = s p.counts.Prim.n_addr;
        n_store = s p.counts.Prim.n_store;
        n_deref2 = s p.counts.Prim.n_deref2;
        n_load = s p.counts.Prim.n_load;
      };
    n_indirect = s p.n_indirect;
  }
