(** Benchmark profiles from the paper's Table 2, with the Table 3/Table 4
    reference results for side-by-side reporting in the benchmark
    harness.

    The original code bases are not shippable, so the harness generates
    synthetic C whose primitive-assignment mix matches each profile — the
    quantities that drive the solver's cost (DESIGN.md,
    "Substitutions"). *)

open Cla_ir

(** Reference row of Table 3 (field-based analysis results). *)
type table3 = {
  t3_pointer_vars : int;
  t3_relations : int;
  t3_real_s : float;
  t3_user_s : float;
  t3_size_mb : float;
  t3_in_core : int;
  t3_loaded : int;
  t3_in_file : int;
}

(** Reference row of Table 4 (field-independent, preliminary). *)
type table4 = {
  t4_pointer_vars : int;
  t4_relations : int;
  t4_user_s : float;
  t4_size_mb : float;
}

type t = {
  name : string;
  loc_display : string;  (** Table 2's source-LOC column (or ["-"]) *)
  preproc_display : string;
  variables : int;  (** Table 2 "program variables" *)
  counts : Prim.counts;  (** Table 2 per-kind assignment counts *)
  hubbiness : float;
      (** how concentrated the join-point structure is — drives how large
          points-to sets grow (emacs ≫ nethack) *)
  n_indirect : int;  (** indirect call sites *)
  scale : float;  (** 1.0, or the factor passed to {!scaled} *)
  table3 : table3;
  table4 : table4;
}

val nethack : t
val burlap : t
val vortex : t
val emacs : t
val povray : t
val gcc : t
val gimp : t
val lucent : t

(** All eight, in the paper's order. *)
val all : t list

val find : string -> t option

(** Uniformly scale a profile down (quick test runs). *)
val scaled : float -> t -> t
