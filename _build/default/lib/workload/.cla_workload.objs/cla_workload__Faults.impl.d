lib/workload/faults.ml: Andersen Binio Bytes Char Cla_core Crc32 Diag Fmt Objfile Rng Solution String
