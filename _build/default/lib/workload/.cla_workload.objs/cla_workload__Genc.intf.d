lib/workload/genc.mli: Profile
