lib/workload/profile.ml: Cla_ir List Prim
