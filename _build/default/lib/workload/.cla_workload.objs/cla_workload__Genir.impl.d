lib/workload/genir.ml: Array Cla_core Cla_ir Fmt List Loc Objfile Prim Rng Var
