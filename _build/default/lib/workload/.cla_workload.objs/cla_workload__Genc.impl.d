lib/workload/genc.ml: Array Buffer Cla_ir Float Fmt Fun Hashtbl Int64 List Prim Profile Rng String
