lib/workload/genir.mli: Cla_core
