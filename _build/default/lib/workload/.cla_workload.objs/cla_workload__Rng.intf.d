lib/workload/rng.mli:
