lib/workload/rng.ml: Array Int64
