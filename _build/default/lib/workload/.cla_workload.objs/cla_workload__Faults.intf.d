lib/workload/faults.mli: Cla_core Rng Solution
