lib/workload/profile.mli: Cla_ir Prim
