(** Synthetic C workload generator.

    Produces a deterministic multi-file C program whose primitive-assignment
    mix matches a Table 2 profile: the generator plans exactly the requested
    number of [x = y], [x = &y], [*x = y], [x = *y] and [*x = *y]
    assignments (function calls and definitions consume part of the copy
    budget, as they lower to argument/return copies), distributes them over
    functions across files, and renders compilable C.

    Shape matters as much as counts: a few {e hub} pointers receive most of
    the address-of assignments and copy chains spread their points-to sets
    (the paper's "join-point effect", Section 5), with the concentration
    controlled by the profile's [hubbiness]; struct traffic is laid out so
    that the field-based / field-independent choice separates measurably
    (each field is fed from its own hub, so collapsing fields onto their
    base objects — field-independent — unions unrelated hub sets, Table 4's
    effect). *)

open Cla_ir

type var = {
  vname : string;
  vfile : int;  (* owning file; -1 = global to all (extern-linked) *)
  vfun : int;  (* owning function; -1 = file scope *)
  vcomm : int;  (* owning community; -1 = shared *)
  level : int;  (* 0 = int, 1 = int*, 2 = int**, 3 = int*** *)
}

type func = { fname : string; ffile : int; arity : int; fidx : int }

type t = {
  params : Profile.t;
  seed : int64;
  n_files : int;
  funcs : func array;
  (* pools by (level); each entry carries visibility *)
  globals : var array array;  (* globals.(level) *)
  statics : var array array array;  (* statics.(file).(level), for rendering *)
  statics_comm : var array array array;  (* statics.(community).(level) *)
  locals : var array array array;  (* locals.(func).(level) *)
  n_structs : int;
  fields_per_struct : int;
  n_instances : int;  (* struct-typed variables (all global) *)
  n_funptrs : int;
  n_comm : int;  (* communities: locality domains for variable usage *)
  n_hubs : int array;  (* per level: size of the shared hub region *)
  n_sinks : int array;  (* per level: tail region that reads from hubs *)
}

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let plan (p : Profile.t) ~seed : t =
  let v = p.variables in
  let n_files = max 2 (v / 1200) in
  let n_funcs = max 3 (v / 45) in
  let n_comm = max 2 (n_funcs / 4) in
  let n_structs = max 1 (v / 150) in
  let fields_per_struct = 6 in
  let n_instances = max 2 (n_structs * 2) in
  let n_funptrs = max 2 (p.n_indirect / 8) in
  let c = p.counts in
  let p1 = max 8 (min (v / 5) (c.Prim.n_addr * 2 / 3)) in
  let p2 = max 4 (p1 / 8) in
  let p3 = max 2 (p2 / 8) in
  let overhead = (n_funcs * 7) + (n_structs * fields_per_struct) + n_instances + n_funptrs in
  let ints = max (v / 4) (v - overhead - p1 - p2 - p3) in
  (* split each level pool into globals (55%), statics (15%), locals *)
  let rng = Rng.create seed in
  let funcs =
    Array.init n_funcs (fun i ->
        {
          fname = Fmt.str "fn%d" i;
          ffile = i * n_files / n_funcs;
          arity = 1 + Rng.int rng 3;
          fidx = i;
        })
  in
  let mk_pools total level prefix =
    let n_glob = max 1 (total * 55 / 100) in
    let n_stat = max 0 (total * 15 / 100) in
    let n_loc = max 0 (total - n_glob - n_stat) in
    let globals =
      Array.init n_glob (fun i ->
          { vname = Fmt.str "%sg%d_%d" prefix level i; vfile = -1; vfun = -1; vcomm = -1; level })
    in
    let statics =
      Array.init n_stat (fun i ->
          (* a static belongs to a community; it lives in a file hosting
             that community's functions *)
          let c = Rng.int rng n_comm in
          let fn = min (n_funcs - 1) (c * n_funcs / n_comm) in
          {
            vname = Fmt.str "%ss%d_%d" prefix level i;
            vfile = funcs.(fn).ffile;
            vfun = -1;
            vcomm = c;
            level;
          })
    in
    let locals =
      Array.init n_loc (fun i ->
          let fn = Rng.int rng n_funcs in
          {
            vname = Fmt.str "%sl%d_%d" prefix level i;
            vfile = funcs.(fn).ffile;
            vfun = fn;
            vcomm = fn * n_comm / n_funcs;
            level;
          })
    in
    (globals, statics, locals)
  in
  let g0, s0, l0 = mk_pools ints 0 "" in
  let g1, s1, l1 = mk_pools p1 1 "" in
  let g2, s2, l2 = mk_pools p2 2 "" in
  let g3, s3, l3 = mk_pools p3 3 "" in
  (* single-pass bucketing (a filter per bucket is quadratic at gimp scale) *)
  let bucket n key arr =
    let out = Array.make n [] in
    Array.iter
      (fun v ->
        let k = key v in
        if k >= 0 && k < n then out.(k) <- v :: out.(k))
      arr;
    Array.map (fun l -> Array.of_list (List.rev l)) out
  in
  let by_file arr = bucket n_files (fun v -> v.vfile) arr in
  let by_comm arr = bucket n_comm (fun v -> v.vcomm) arr in
  let by_fun arr = bucket n_funcs (fun v -> v.vfun) arr in
  {
    params = p;
    seed;
    n_files;
    funcs;
    globals = [| g0; g1; g2; g3 |];
    statics =
      Array.init n_files (fun f ->
          [| (by_file s0).(f); (by_file s1).(f); (by_file s2).(f); (by_file s3).(f) |]);
    statics_comm =
      Array.init n_comm (fun c ->
          [| (by_comm s0).(c); (by_comm s1).(c); (by_comm s2).(c); (by_comm s3).(c) |]);
    locals =
      Array.init n_funcs (fun fn ->
          [| (by_fun l0).(fn); (by_fun l1).(fn); (by_fun l2).(fn); (by_fun l3).(fn) |]);
    n_structs;
    fields_per_struct;
    n_instances;
    n_funptrs;
    n_comm;
    n_hubs =
      [| 0;
         max 2 (Array.length g1 / 48);
         max 1 (Array.length g2 / 16);
         max 1 (Array.length g3 / 8) |];
    n_sinks = [| 0; Array.length g1 * 2 / 5; Array.length g2 / 6; 0 |];
  }

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

type out = {
  t : t;
  rng : Rng.t;
  bodies : Buffer.t array;  (* one per function *)
  headers : Buffer.t array;  (* file-scope text per file *)
  used_globals : (string, unit) Hashtbl.t array;  (* extern decls needed *)
  mutable stmt_count : int array;  (* statements per function, for if-wrapping *)
}

let typ_of_level = function
  | 0 -> "int "
  | 1 -> "int *"
  | 2 -> "int **"
  | _ -> "int ***"

(* The community a function belongs to: a locality domain.  Variable uses
   stay inside the community except for the shared hub region and rare
   cross-community joins — real code bases are modular, and it is exactly
   the rare central objects that make points-to sets blow up (Section 5's
   join-point effect). *)
let comm_of o fn = fn * o.t.n_comm / Array.length o.t.funcs

(* Struct types are partitioned across communities too (a module's data
   structures are its own); an instance's type is drawn from its
   community's share so no field variable bridges communities. *)
let type_of_instance t i =
  let c = i mod t.n_comm in
  let per = max 1 (t.n_structs / t.n_comm) in
  let j = (c mod t.n_structs) + (t.n_comm * (i / t.n_comm mod per)) in
  if j < t.n_structs && j mod t.n_comm = c mod t.n_comm then j
  else c mod t.n_structs

(* Pick a variable of [level] visible inside function [fn].  [bias] selects
   from the shared hub region (concentration controlled by the profile's
   hubbiness); otherwise the pick stays in [fn]'s community slice of the
   global pool, or its file statics / function locals. *)
let pick ?(sink = false) o ~fn ~level ~bias =
  let t = o.t in
  let f = t.funcs.(fn) in
  let choice = Rng.int o.rng 100 in
  let nhub l = min t.n_hubs.(l) (Array.length t.globals.(l)) in
  let nsink l =
    min t.n_sinks.(l) (max 0 (Array.length t.globals.(l) - nhub l))
  in
  let from_hubs () =
    let pool = t.globals.(level) in
    let h = nhub level in
    if h = 0 then None
    else Some pool.(Rng.biased o.rng h (t.params.Profile.hubbiness ** 2.0))
  in
  (* the sink region: "reader" variables at the tail of the pool that take
     values from hubs but are never dereferenced — the cheap way real
     programs accumulate enormous points-to sets (emacs-like rows) *)
  let from_sinks () =
    let pool = t.globals.(level) in
    let k = nsink level in
    if k = 0 then from_hubs ()
    else Some pool.(Array.length pool - 1 - Rng.int o.rng k)
  in
  let from_globals () =
    let pool = t.globals.(level) in
    let h = nhub level in
    let n = Array.length pool - h - nsink level in
    if n <= 0 then from_hubs ()
    else begin
      (* community slice of the non-hub, non-sink region *)
      let c = comm_of o fn in
      let sz = max 1 (n / t.n_comm) in
      let lo = h + (c * sz) in
      let lo = if lo + sz > h + n then h else lo in
      let sz = min sz (max 1 (h + n - lo)) in
      Some pool.(lo + Rng.int o.rng sz)
    end
  in
  let from_statics () =
    (* community-owned statics only: a file's statics that belong to other
       communities are another module's privates *)
    let pool = t.statics_comm.(comm_of o fn).(level) in
    if Array.length pool = 0 then None else Some (Rng.choose o.rng pool)
  in
  let from_locals () =
    let pool = t.locals.(fn).(level) in
    if Array.length pool = 0 then None else Some (Rng.choose o.rng pool)
  in
  let v =
    if sink then from_sinks ()
    else if bias then from_hubs ()
    else
      match
        if choice < 55 then from_globals ()
        else if choice < 70 then from_statics ()
        else from_locals ()
      with
      | Some v -> Some v
      | None -> (
          match from_globals () with Some v -> Some v | None -> from_locals ())
  in
  match v with
  | Some v ->
      if v.vfile = -1 then
        Hashtbl.replace o.used_globals.(f.ffile)
          (v.vname ^ "|" ^ typ_of_level level)
          ();
      v
  | None -> { vname = "dummy0"; vfile = -1; vfun = -1; vcomm = -1; level }

let stmt o ~fn text =
  let b = o.bodies.(fn) in
  o.stmt_count.(fn) <- o.stmt_count.(fn) + 1;
  (* light control-flow realism: every so often, guard a statement *)
  if o.stmt_count.(fn) mod 11 = 7 then
    Buffer.add_string b (Fmt.str "  if (cond) { %s }\n" text)
  else if o.stmt_count.(fn) mod 17 = 13 then
    Buffer.add_string b (Fmt.str "  while (cond) { %s break; }\n" text)
  else Buffer.add_string b (Fmt.str "  %s\n" text)

let int_ops = [| "+"; "+"; "-"; "&"; "|"; "*"; ">>"; "/"; "!"; "^" |]

(** Generate the program for [profile].  Returns [(filename, source)]
    pairs, ready for {!Cla_core.Pipeline.compile_link}. *)
let generate ?(seed = 42L) (profile : Profile.t) : (string * string) list =
  let t = plan profile ~seed in
  let rng = Rng.create (Int64.add seed 17L) in
  let n_funcs = Array.length t.funcs in
  let o =
    {
      t;
      rng;
      bodies = Array.init n_funcs (fun _ -> Buffer.create 512);
      headers = Array.init t.n_files (fun _ -> Buffer.create 512);
      used_globals = Array.init t.n_files (fun _ -> Hashtbl.create 64);
      stmt_count = Array.make n_funcs 0;
    }
  in
  let c = profile.Profile.counts in
  (* One knob gates every cross-community mechanism: the fraction of
     operations allowed to touch the shared hub region.  Low-aliasing
     benchmarks (nethack) have essentially none; emacs-like ones have
     many (their Table 3 points-to sets are two orders of magnitude
     denser). *)
  let join_frac =
    Float.min 0.30 (Float.max 0.004 ((profile.Profile.hubbiness -. 1.0) *. 0.05))
  in
  (* Absolute budgets derived from the Table 3 targets, so shape holds at
     every scale: the mega-set (what a hub aggregates) is ~3x the target
     average points-to set, and the number of join copies is what is
     needed to reach the target relation volume through sinks. *)
  let t3 = profile.Profile.table3 in
  let mega =
    max 10
      (3 * t3.Profile.t3_relations / max 1 t3.Profile.t3_pointer_vars)
  in
  let join_budget = max 8 (t3.Profile.t3_relations / mega) in
  let hub_addr_budget = mega in
  let hub_addrs_used = ref 0 in
  let joins_used = ref 0 in
  let hubhub_budget = max 2 (t.n_hubs.(1) / 2) in
  let hubhub_used = ref 0 in
  (* field 0 of each struct is the "link" field (next pointers etc.): it
     carries a hub-sized set.  Field-based analysis isolates it; the
     field-independent mode merges it into the base object, where reads of
     the *other* fields pick it up — Table 4's blowup. *)
  let struct_hub_budget = max 4 (join_budget / 4) in
  let struct_hub_used = ref 0 in
  (* ---- copy budget bookkeeping ---- *)
  let copies_left = ref c.Prim.n_copy in
  let addrs_left = ref c.Prim.n_addr in
  let take budget n = budget := max 0 (!budget - n) in
  let rand_fn () = Rng.int rng n_funcs in
  (* every function definition lowers each parameter to one copy
     [prm_i = fn@i]; charge them to the copy budget up front *)
  Array.iter (fun f -> take copies_left f.arity) t.funcs;

  (* ---- direct calls: consume (arity + 1) copies each ---- *)
  let call_budget = min (c.Prim.n_copy / 12) (6 * n_funcs) in
  let n_calls = ref 0 in
  while !copies_left > 0 && !n_calls * 3 < call_budget do
    let caller = rand_fn () in
    let callee = t.funcs.(Rng.int rng n_funcs) in
    let args =
      List.init callee.arity (fun _ ->
          (pick o ~fn:caller ~level:0 ~bias:false).vname)
    in
    let dst = pick o ~fn:caller ~level:0 ~bias:false in
    stmt o ~fn:caller
      (Fmt.str "%s = %s(%s);" dst.vname callee.fname (String.concat ", " args));
    take copies_left (callee.arity + 1);
    incr n_calls
  done;

  (* ---- indirect calls: fp = &fn (addr) + per-site arg/ret copies ---- *)
  let funptrs = Array.init t.n_funptrs (fun i -> Fmt.str "fp%d" i) in
  Array.iteri
    (fun i fp ->
      let target = t.funcs.(Rng.int rng n_funcs) in
      let fn = rand_fn () in
      stmt o ~fn (Fmt.str "%s = &%s;" fp target.fname);
      ignore i;
      take addrs_left 1)
    funptrs;
  for _ = 1 to profile.Profile.n_indirect do
    let caller = rand_fn () in
    let fp = Rng.choose rng funptrs in
    let a1 = pick o ~fn:caller ~level:0 ~bias:false in
    let dst = pick o ~fn:caller ~level:0 ~bias:false in
    stmt o ~fn:caller (Fmt.str "%s = (*%s)(%s);" dst.vname fp a1.vname);
    take copies_left 2
  done;

  (* ---- struct traffic: each field is fed from its own hub pointer so
     field-based stays tight while field-independent unions the hubs ---- *)
  let struct_copy_budget = !copies_left * 15 / 100 in
  let n_struct_ops = ref 0 in
  while !n_struct_ops < struct_copy_budget && !copies_left > 1 do
    let fn = rand_fn () in
    (* structs and instances are owned by communities: struct types are a
       locality boundary in real code (a module's data structures), so a
       community only touches its own types.  Each field is fed from its
       own source pointer, which keeps field-based analysis tight while
       field-independent (which merges all fields of the base object)
       unions them all (Table 4's effect). *)
    let c = comm_of o fn in
    let s =
      (* instance ids of community c are exactly {c, c + n_comm, ...} *)
      let count = ((t.n_instances - 1 - c) / t.n_comm) + 1 in
      if c >= t.n_instances then Rng.int rng t.n_instances
      else c + (t.n_comm * Rng.int rng count)
    in
    let fld = Rng.int rng (t.fields_per_struct / 2) in
    if Rng.flip rng 0.45 then begin
      let hubw = fld = 0 && !struct_hub_used < struct_hub_budget in
      if hubw then incr struct_hub_used;
      let src = pick o ~fn ~level:1 ~bias:hubw in
      stmt o ~fn (Fmt.str "inst%d.pf%d = %s;" s fld src.vname)
    end
    else if fld = 0 then begin
      (* link-field reads land in readers (sinks) *)
      let dst = pick o ~fn ~level:1 ~bias:false ~sink:true in
      stmt o ~fn (Fmt.str "%s = inst%d.pf%d;" dst.vname s fld)
    end
    else begin
      (* data-field reads flow back into the community: harmless when
         fields are distinguished, poisonous when they are merged *)
      let dst = pick o ~fn ~level:1 ~bias:false ~sink:(Rng.flip rng 0.5) in
      stmt o ~fn (Fmt.str "%s = inst%d.pf%d;" dst.vname s fld)
    end;
    take copies_left 1;
    incr n_struct_ops
  done;

  (* ---- address-of assignments (the static section) ---- *)
  while !addrs_left > 0 do
    let fn = rand_fn () in
    let kind = Rng.int rng 100 in
    (if kind < 6 then begin
       (* heap allocation: a fresh location per site *)
       let dst = pick o ~fn ~level:1 ~bias:true in
       stmt o ~fn (Fmt.str "%s = (int *)malloc(sizeof(int));" dst.vname)
     end
     else if kind < 86 then begin
       (* p = &x : most destinations uniform (real code takes an address
          about once per pointer); a minority feed the hubs *)
       let to_hub =
         Rng.flip rng (join_frac *. 3.) && !hub_addrs_used < hub_addr_budget
       in
       if to_hub then incr hub_addrs_used;
       let dst = pick o ~fn ~level:1 ~bias:to_hub in
       let src = pick o ~fn ~level:0 ~bias:false in
       stmt o ~fn (Fmt.str "%s = &%s;" dst.vname src.vname);
       (* hubs aggregate each other: the join-point effect concentrates *)
       if Rng.flip rng (join_frac /. 2.) && !hubhub_used < hubhub_budget then begin
         incr hubhub_used;
         let h1 = pick o ~fn ~level:1 ~bias:true in
         let h2 = pick o ~fn ~level:1 ~bias:true in
         if h1.vname <> h2.vname then
           stmt o ~fn (Fmt.str "%s = %s;" h1.vname h2.vname)
       end
     end
     else if kind < 96 then begin
       let dst = pick o ~fn ~level:2 ~bias:(Rng.flip rng (join_frac *. 2.)) in
       let src = pick o ~fn ~level:1 ~bias:false in
       stmt o ~fn (Fmt.str "%s = &%s;" dst.vname src.vname)
     end
     else begin
       let dst = pick o ~fn ~level:3 ~bias:false in
       let src = pick o ~fn ~level:2 ~bias:false in
       stmt o ~fn (Fmt.str "%s = &%s;" dst.vname src.vname)
     end);
    take addrs_left 1
  done;

  (* ---- stores *x = y ---- *)
  for _ = 1 to c.Prim.n_store do
    let fn = rand_fn () in
    let lvl = if Rng.flip rng 0.8 then 1 else 2 in
    let p = pick o ~fn ~level:lvl ~bias:false in
    let y = pick o ~fn ~level:(lvl - 1) ~bias:false in
    stmt o ~fn (Fmt.str "*%s = %s;" p.vname y.vname)
  done;

  (* ---- loads x = *y ---- *)
  for _ = 1 to c.Prim.n_load do
    let fn = rand_fn () in
    let lvl = if Rng.flip rng 0.8 then 1 else 2 in
    let p = pick o ~fn ~level:lvl ~bias:false in
    let x = pick o ~fn ~level:(lvl - 1) ~bias:false in
    stmt o ~fn (Fmt.str "%s = *%s;" x.vname p.vname)
  done;

  (* ---- *x = *y ---- *)
  for _ = 1 to c.Prim.n_deref2 do
    let fn = rand_fn () in
    let p = pick o ~fn ~level:1 ~bias:false in
    let q = pick o ~fn ~level:1 ~bias:false in
    stmt o ~fn (Fmt.str "*%s = *%s;" p.vname q.vname)
  done;

  (* ---- remaining copies: pointer chains (spread hub sets) and integer
     arithmetic (dependence fodder; skipped by the points-to loader).
     Pointer copies are mostly *local*: real code moves a pointer within a
     small clique of variables (a call chain, a data structure's helpers);
     only the rare cross-clique copy joins flows, and those join points are
     what make points-to sets blow up (Section 5).  The profile's
     [hubbiness] controls how often cliques are joined. ---- *)
  while !copies_left > 0 do
    let fn = rand_fn () in
    if Rng.flip rng 0.3 then begin
      let lvl = if Rng.flip rng 0.85 then 1 else 2 in
      (if Rng.flip rng join_frac && !joins_used < join_budget then begin
         incr joins_used;
         (* join point: a hub's set flows into a reader (sink) variable;
            sinks are never dereferenced, so these copies inflate the
            points-to volume without inflating the store fan-out *)
         let src = pick o ~fn ~level:lvl ~bias:true in
         let dst = pick o ~fn ~level:lvl ~bias:false ~sink:true in
         if dst.vname <> src.vname then
           stmt o ~fn (Fmt.str "%s = %s;" dst.vname src.vname)
       end
       else begin
         (* ordinary community-local pointer move *)
         let src = pick o ~fn ~level:lvl ~bias:false in
         let dst = pick o ~fn ~level:lvl ~bias:false in
         if dst.vname <> src.vname then
           stmt o ~fn (Fmt.str "%s = %s;" dst.vname src.vname)
       end);
      take copies_left 1
    end
    else begin
      let src = pick o ~fn ~level:0 ~bias:true in
      let dst = pick o ~fn ~level:0 ~bias:false in
      if Rng.flip rng 0.5 && !copies_left > 1 then begin
        let op = Rng.choose rng int_ops in
        let src2 = pick o ~fn ~level:0 ~bias:false in
        if op = "!" then begin
          stmt o ~fn (Fmt.str "%s = !%s;" dst.vname src.vname);
          take copies_left 1
        end
        else begin
          stmt o ~fn (Fmt.str "%s = %s %s %s;" dst.vname src.vname op src2.vname);
          take copies_left 2
        end
      end
      else begin
        if dst.vname <> src.vname then
          stmt o ~fn (Fmt.str "%s = %s;" dst.vname src.vname);
        take copies_left 1
      end
    end
  done;

  (* ---- render files ---- *)
  let structs_of_file f =
    List.filter (fun s -> s mod t.n_files = f) (List.init t.n_structs Fun.id)
  in
  let files =
    List.init t.n_files (fun f ->
        let b = Buffer.create (1 lsl 14) in
        Buffer.add_string b (Fmt.str "/* generated: %s file %d seed %Ld */\n" profile.Profile.name f seed);
        Buffer.add_string b "#define GUARD(x) (x)\n";
        Buffer.add_string b "extern void *malloc(unsigned long n);\n";
        Buffer.add_string b "extern int cond;\n";
        if f = 0 then Buffer.add_string b "int cond;\nint dummy0;\n"
        else Buffer.add_string b "extern int dummy0;\n";
        (* struct definitions are shared: every file defines the ones it may
           touch; we simply define all (header-like), matching real code
           where struct defs come from common headers *)
        for s = 0 to t.n_structs - 1 do
          Buffer.add_string b (Fmt.str "struct st%d {" s);
          for fl = 0 to t.fields_per_struct - 1 do
            if fl < t.fields_per_struct / 2 then
              Buffer.add_string b (Fmt.str " int f%d;" fl)
            else Buffer.add_string b (Fmt.str " int *pf%d;" (fl - (t.fields_per_struct / 2)))
          done;
          Buffer.add_string b " };\n"
        done;
        ignore (structs_of_file f);
        (* struct instances and function pointers live in file 0 *)
        if f = 0 then begin
          for i = 0 to t.n_instances - 1 do
            Buffer.add_string b
              (Fmt.str "struct st%d inst%d;\n" (type_of_instance t i) i)
          done;
          Array.iter
            (fun fp -> Buffer.add_string b (Fmt.str "int (*%s)();\n" fp))
            (Array.init t.n_funptrs (fun i -> Fmt.str "fp%d" i))
        end
        else begin
          for i = 0 to t.n_instances - 1 do
            Buffer.add_string b
              (Fmt.str "extern struct st%d inst%d;\n" (type_of_instance t i) i)
          done;
          for i = 0 to t.n_funptrs - 1 do
            Buffer.add_string b (Fmt.str "extern int (*fp%d)();\n" i)
          done
        end;
        (* globals this file owns *)
        Array.iteri
          (fun level pool ->
            Array.iter
              (fun v ->
                if Hashtbl.hash v.vname mod t.n_files = f then
                  Buffer.add_string b
                    (Fmt.str "%s%s;\n" (typ_of_level level) v.vname))
              pool)
          t.globals;
        (* extern declarations for foreign globals used here *)
        Hashtbl.iter
          (fun key () ->
            match String.index_opt key '|' with
            | Some i ->
                let name = String.sub key 0 i in
                let typ = String.sub key (i + 1) (String.length key - i - 1) in
                if Hashtbl.hash name mod t.n_files <> f then
                  Buffer.add_string b (Fmt.str "extern %s%s;\n" typ name)
            | None -> ())
          o.used_globals.(f);
        (* statics *)
        Array.iteri
          (fun level pool ->
            Array.iter
              (fun v ->
                Buffer.add_string b
                  (Fmt.str "static %s%s;\n" (typ_of_level level) v.vname))
              pool)
          t.statics.(f);
        (* function prototypes for cross-file calls *)
        Array.iter
          (fun fn ->
            if fn.ffile <> f then
              Buffer.add_string b (Fmt.str "extern int %s();\n" fn.fname))
          t.funcs;
        Buffer.add_buffer b o.headers.(f);
        (* functions *)
        Array.iter
          (fun fn ->
            if fn.ffile = f then begin
              let params =
                String.concat ", "
                  (List.init fn.arity (fun i -> Fmt.str "int prm%d" i))
              in
              Buffer.add_string b (Fmt.str "int %s(%s) {\n" fn.fname params);
              (* locals *)
              Array.iteri
                (fun level pool ->
                  Array.iter
                    (fun v ->
                      Buffer.add_string b
                        (Fmt.str "  %s%s;\n" (typ_of_level level) v.vname))
                    pool)
                t.locals.(fn.fidx);
              Buffer.add_buffer b o.bodies.(fn.fidx);
              Buffer.add_string b (Fmt.str "  return GUARD(prm0);\n}\n")
            end)
          t.funcs;
        (Fmt.str "%s_%02d.c" profile.Profile.name f, Buffer.contents b))
  in
  files
