(** Synthetic C workload generator.

    Produces a deterministic multi-file C program whose primitive
    assignment mix matches a Table 2 profile: exactly the requested
    numbers of [*x = y] / [x = *y] / [*x = *y], the requested address-of
    count, and a copy budget shared between plain copies, arithmetic,
    struct traffic, and function calls (which lower to argument/return
    copies).

    Shape matters as much as counts (DESIGN.md): variables live in
    {e communities} (locality domains) with a small shared hub region;
    the profile's hubbiness and its Table 3 targets control how many join
    points connect them, which is what makes points-to sets large.  Each
    struct's field 0 plays the "link field" role fed from hubs, so the
    field-based/field-independent choice separates measurably (Table 4). *)

(** Generate the program for a profile.  Returns [(filename, source)]
    pairs ready for {!Cla_core.Pipeline.compile_link}. *)
val generate : ?seed:int64 -> Profile.t -> (string * string) list
