(** Random constraint-program generator (database level, no C involved).

    Used by the property-based tests — on any generated program the
    pre-transitive, worklist and bit-vector solvers must produce identical
    points-to sets, and Steensgaard's must be a superset — and by the
    ablation benchmarks, which need pure solver workloads without parse
    cost. *)

open Cla_ir
open Cla_core

type params = {
  n_vars : int;
  n_addr : int;
  n_copy : int;
  n_store : int;
  n_load : int;
  n_deref2 : int;
  n_funcs : int;  (** functions with standardized arg/ret vars *)
  n_indirect : int;  (** indirect call sites *)
}

let default_params =
  {
    n_vars = 30;
    n_addr = 15;
    n_copy = 25;
    n_store = 8;
    n_load = 8;
    n_deref2 = 3;
    n_funcs = 2;
    n_indirect = 2;
  }

(** Generate a database: plain variables [0, n_vars), then per function a
    [Func] variable, [2] args and a ret. *)
let generate ?(params = default_params) seed : Objfile.db =
  let rng = Rng.create seed in
  let vars = ref [] in
  let nv = ref 0 in
  let add_var name kind =
    let id = !nv in
    incr nv;
    vars :=
      {
        Objfile.vname = name;
        vkind = kind;
        vlinkage = Var.Intern;
        vtyp = "int*";
        vloc = Loc.make ~file:"gen.c" ~line:(id + 1) ~col:0;
        vowner = "";
      }
      :: !vars;
    id
  in
  for i = 0 to params.n_vars - 1 do
    ignore (add_var (Fmt.str "v%d" i) Var.Global)
  done;
  let fundefs = ref [] in
  let funptr_pool = ref [] in
  for f = 0 to params.n_funcs - 1 do
    let fv = add_var (Fmt.str "f%d" f) Var.Func in
    let a1 = add_var (Fmt.str "f%d@1" f) (Var.Arg 1) in
    let a2 = add_var (Fmt.str "f%d@2" f) (Var.Arg 2) in
    let ret = add_var (Fmt.str "f%d@ret" f) Var.Ret in
    fundefs :=
      {
        Objfile.ffvar = fv;
        farity = 2;
        fret = ret;
        fargs = [| a1; a2 |];
        ffloc = Loc.none;
      }
      :: !fundefs;
    funptr_pool := fv :: !funptr_pool
  done;
  let indirects = ref [] in
  for i = 0 to params.n_indirect - 1 do
    let p = Rng.int rng params.n_vars in
    let a1 = add_var (Fmt.str "ip%d@1" i) (Var.Arg 1) in
    let ret = add_var (Fmt.str "ip%d@ret" i) Var.Ret in
    indirects :=
      {
        Objfile.iptr = p;
        inargs = 1;
        iret = ret;
        iargs = [| a1 |];
        iiloc = Loc.none;
      }
      :: !indirects
  done;
  let nvars = !nv in
  let any () = Rng.int rng nvars in
  let plain () = Rng.int rng params.n_vars in
  let statics = ref [] in
  let blocks = Array.make nvars [] in
  let loc = Loc.make ~file:"gen.c" ~line:0 ~col:0 in
  let prim pkind pdst psrc =
    { Objfile.pkind; pdst; psrc; pop = None; ploc = loc }
  in
  for _ = 1 to params.n_addr do
    (* occasionally take a function's address so indirect calls resolve *)
    let src =
      if params.n_funcs > 0 && Rng.flip rng 0.2 then
        List.nth !funptr_pool (Rng.int rng (List.length !funptr_pool))
      else plain ()
    in
    statics := prim Objfile.Paddr (any ()) src :: !statics
  done;
  let block pkind =
    let dst = any () and src = any () in
    blocks.(src) <- prim pkind dst src :: blocks.(src)
  in
  for _ = 1 to params.n_copy do
    block Objfile.Pcopy
  done;
  for _ = 1 to params.n_store do
    block Objfile.Pstore
  done;
  for _ = 1 to params.n_load do
    block Objfile.Pload
  done;
  for _ = 1 to params.n_deref2 do
    block Objfile.Pderef2
  done;
  let vars_arr = Array.of_list (List.rev !vars) in
  {
    Objfile.vars = vars_arr;
    keys = [];
    statics = List.rev !statics;
    blocks;
    fundefs = List.rev !fundefs;
    indirects = List.rev !indirects;
    consts = [];
    meta =
      {
        Objfile.mfiles = [ "gen.c" ];
        msource_lines = 0;
        mpreproc_lines = 0;
        mcounts =
          {
            Prim.n_copy = params.n_copy;
            n_addr = params.n_addr;
            n_store = params.n_store;
            n_deref2 = params.n_deref2;
            n_load = params.n_load;
          };
      };
  }

(** Generate and roundtrip through serialization (what the solvers see). *)
let view ?params seed : Objfile.view =
  Objfile.view_of_string (Objfile.write (generate ?params seed))
