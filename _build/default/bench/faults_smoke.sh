#!/bin/sh
# Robustness smoke test, mirroring smoke.sh: build a small database, then
#   1. run the in-process fault-injection sweep (`cla faults`) — 200
#      seeded mutations, each of which must analyze identically or be
#      rejected as corrupt;
#   2. drive truncated and bit-flipped copies through `cla analyze` as a
#      real subprocess — the exit code must be 0 (accepted) or 2 (bad
#      input), never 3 (internal error) or a signal;
#   3. check bounded-memory analysis: --budget must report evictions in
#      --stats-json and leave the solution line unchanged.
# Wired into `dune runtest` (see bench/dune); takes the cla binary as $1.
set -eu

cla=${1:?usage: faults_smoke.sh path/to/cla.exe}
case "$cla" in
  /*) : ;;
  *) cla=$(pwd)/$cla ;;
esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT INT TERM
cd "$dir"

"$cla" gen burlap --scale 0.1 --dir src >/dev/null
"$cla" compile src/*.c >/dev/null
"$cla" link src/*.clo -o prog.cla >/dev/null

# 1. in-process sweep: exits 3 on any fault-invariant violation
"$cla" faults prog.cla -n 200 --seed 7 >/dev/null || {
  echo "faults_smoke.sh: in-process sweep failed (exit $?)" >&2
  exit 1
}

# 2. mutants through the real CLI: accepted (0) or rejected as input (2)
size=$(wc -c < prog.cla)
check_analyze() {
  rc=0
  "$cla" analyze "$1" >/dev/null 2>&1 || rc=$?
  case $rc in
    0|2) : ;;
    *)
      echo "faults_smoke.sh: $2 made 'cla analyze' exit $rc (want 0 or 2)" >&2
      exit 1
      ;;
  esac
}
i=1
while [ "$i" -le 20 ]; do
  n=$(( size * i / 21 ))
  head -c "$n" prog.cla > trunc.cla
  check_analyze trunc.cla "truncation to $n bytes"
  off=$(( (i * 7919) % size ))
  cp prog.cla flip.cla
  printf '\251' | dd of=flip.cla bs=1 seek="$off" conv=notrunc 2>/dev/null
  check_analyze flip.cla "byte flip at offset $off"
  i=$(( i + 1 ))
done

# 3. bounded-memory run: evictions recorded, solution line unchanged
"$cla" analyze prog.cla --stats-json full.json > full.out
"$cla" analyze prog.cla --budget 50 --stats-json budget.json > budget.out
grep -q '"load.evictions"' budget.json || {
  echo "faults_smoke.sh: load.evictions missing from budget stats" >&2
  exit 1
}
evictions=$(sed -n 's/.*"load.evictions": *\([0-9]*\).*/\1/p' budget.json)
[ "${evictions:-0}" -gt 0 ] || {
  echo "faults_smoke.sh: expected load.evictions > 0 under --budget 50" >&2
  exit 1
}
sol_full=$(sed 's/, [0-9.]*s.*$//' full.out)
sol_budget=$(sed 's/, [0-9.]*s.*$//' budget.out)
[ "$sol_full" = "$sol_budget" ] || {
  echo "faults_smoke.sh: solution changed under --budget:" >&2
  echo "  unbounded: $sol_full" >&2
  echo "  bounded:   $sol_budget" >&2
  exit 1
}
echo "faults_smoke.sh: ok"
