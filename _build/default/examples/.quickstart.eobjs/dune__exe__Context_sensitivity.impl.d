examples/context_sensitivity.ml: Array Cla_core Compilep Fmt Linkp List Lvalset Objfile Pipeline Solution Transform
