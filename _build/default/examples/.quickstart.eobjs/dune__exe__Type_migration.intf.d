examples/type_migration.mli:
