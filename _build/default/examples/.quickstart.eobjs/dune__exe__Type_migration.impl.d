examples/type_migration.ml: Cla_core Cla_depend Fmt Pipeline
