examples/fieldcmp.mli:
