examples/fieldcmp.ml: Cla_cfront Cla_core Compilep Fmt List Lvalset Normalize Pipeline Solution
