examples/funptr_callgraph.mli:
