examples/quickstart.mli:
