examples/funptr_callgraph.ml: Array Cla_core Cla_ir Fmt List Loc Lvalset Objfile Pipeline Solution Var
