examples/quickstart.ml: Andersen Cla_core Fmt List Loader Lvalset Pipeline Solution
