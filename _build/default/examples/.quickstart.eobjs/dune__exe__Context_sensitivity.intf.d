examples/context_sensitivity.mli:
