(* Field-based vs field-independent struct handling, on the program from
   Section 3 of the paper.  Neither mode dominates: field-based says p and
   r can point to z (fields are shared across instances); field-independent
   says p and q can (instances are separate, fields are merged).

   Run with: dune exec examples/fieldcmp.exe *)

open Cla_core
open Cla_cfront

let source =
  {|
struct S { int *x; int *y; } A, B;
int z;
int main(void) {
  int *p, *q, *r, *s;
  A.x = &z;   /* field-based: assigns to "S.x";
                 field-independent: assigns to "A" */
  p = A.x;    /* p gets &z in both approaches */
  q = A.y;    /* field-independent: q gets &z */
  r = B.x;    /* field-based: r gets &z */
  s = B.y;    /* in neither approach does s get &z */
  return 0;
}
|}

let run mode label =
  let options = { Compilep.default_options with Compilep.mode } in
  let view = Pipeline.compile_link ~options [ ("fields.c", source) ] in
  let sol = Pipeline.points_to view in
  Fmt.pr "=== %s ===@." label;
  List.iter
    (fun name ->
      match Solution.find sol name with
      | Some v ->
          let pts = Solution.points_to sol v in
          Fmt.pr "%s -> {%a}@." name
            Fmt.(list ~sep:comma string)
            (List.map (Solution.var_name sol) (Lvalset.to_list pts))
      | None -> ())
    [ "p"; "q"; "r"; "s" ];
  Fmt.pr "@."

let () =
  run Normalize.Field_based "field-based (the paper's default)";
  run Normalize.Field_independent "field-independent (most other systems)"
