(* Type migration: the paper's motivating application (Section 2).

   Scenario: a legacy code base stores a counter in [short target]; the
   range must grow, so its type must become [int].  Which other objects
   must change with it to avoid data loss through implicit narrowing?

   The program is Figure 1 of the paper; the analysis must report u, w
   and S.x as dependents (through the pointer assignment *v = u), print
   the dependence chains with their source locations, and respect
   "non-targets".

   Run with: dune exec examples/type_migration.exe *)

open Cla_core
module Depend = Cla_depend.Depend

let source =
  {|short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;

void update(void) {
  v = &w;
  u = target;
  *v = u;          /* u flows into w through the pointer */
  s.x = w;         /* and on into the x field of struct S */
}

int log_flag;
void log_it(void) {
  log_flag = !target;   /* "none" strength: not a real dependence */
}
|}

let () =
  let view = Pipeline.compile_link [ ("eg1.c", source) ] in
  let pta = Pipeline.points_to_result view in
  let dep = Depend.prepare view pta in

  Fmt.pr "=== change the type of 'target' from short to int ===@.";
  (match Depend.query_by_name dep "target" with
  | Some report -> Fmt.pr "%a@." (Depend.pp_report dep) report
  | None -> Fmt.pr "target not found@.");

  (* the user knows w is a red herring: prune chains through it *)
  Fmt.pr "=== same query with 'w' declared a non-target ===@.";
  match Depend.query_by_name dep ~non_targets:[ "w" ] "target" with
  | Some report -> Fmt.pr "%a@." (Depend.pp_report dep) report
  | None -> Fmt.pr "target not found@."
