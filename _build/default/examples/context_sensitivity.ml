(* Database-to-database transformers (Section 4 of the paper).

   The object-file database is analysis-agnostic, so pre-analysis
   optimizers are just functions from databases to databases.  This
   example runs the paper's context-sensitivity experiment — "controlled
   duplication of primitive assignments in the database ... requires no
   changes to the compile, link or analyze components" — and the offline
   variable substitution of the paper's reference [21].

   Run with: dune exec examples/context_sensitivity.exe *)

open Cla_core

let source =
  {|
int x, y;

int *identity(int *p) { return p; }

int *a, *b;

void main(void) {
  a = identity(&x);
  b = identity(&y);
}
|}

let show label sol =
  Fmt.pr "%s@." label;
  List.iter
    (fun name ->
      match Solution.find sol name with
      | Some v ->
          Fmt.pr "  %s -> {%a}@." name
            Fmt.(list ~sep:(any ", ") string)
            (List.map (Solution.var_name sol)
               (Lvalset.to_list (Solution.points_to sol v)))
      | None -> Fmt.pr "  %s: merged away by substitution@." name)
    [ "a"; "b" ]

let () =
  let view =
    Objfile.view_of_string
      (Objfile.write (Compilep.compile_string ~file:"id.c" source))
  in
  let db = fst (Linkp.link_views [ view ]) in

  (* context-insensitive: the two calls to identity join *)
  show "context-insensitive (both calls share identity's body):"
    (Pipeline.points_to (Objfile.view_of_string (Objfile.write db)));

  (* duplicate identity's primitive assignments per call site *)
  let db_cs, dstats = Transform.duplicate_contexts db in
  Fmt.pr "@.duplicate_contexts: %d function(s) cloned, %d clone(s), %d assignments added@."
    dstats.Transform.cloned_functions dstats.Transform.clones
    dstats.Transform.added_assignments;
  show "context-sensitive (one body clone per call site):"
    (Pipeline.points_to (Objfile.view_of_string (Objfile.write db_cs)));

  (* offline variable substitution shrinks the constraint system *)
  let db_sub, sstats = Transform.substitute_variables db_cs in
  Fmt.pr "@.substitute_variables: %d variable(s) merged, %d assignment(s) dropped@."
    sstats.Transform.merged_vars sstats.Transform.dropped_assignments;
  Fmt.pr "database: %d -> %d objects@."
    (Array.length db_cs.Objfile.vars)
    (Array.length db_sub.Objfile.vars)
