(* Quickstart: compile a C snippet, link it, run the pre-transitive
   points-to analysis, and query the result.

   The program is Figure 3 of the paper; the analysis must derive
   y -> {x} (through *z = &x) and z -> {y}.

   Run with: dune exec examples/quickstart.exe *)

open Cla_core

let source =
  {|
int x, *y;
int **z;

void main(void) {
  z = &y;
  *z = &x;
}
|}

let () =
  (* compile + link (any number of files) entirely in memory *)
  let view = Pipeline.compile_link [ ("fig3.c", source) ] in

  (* run Andersen's analysis with the pre-transitive graph solver *)
  let result = Pipeline.points_to_result view in
  let solution = result.Andersen.solution in

  Fmt.pr "All non-empty points-to sets:@.%a@." Solution.pp solution;

  (* query a single variable *)
  (match Solution.find solution "y" with
  | Some y ->
      let pts = Solution.points_to solution y in
      Fmt.pr "y can point to %d object(s): %a@." (Lvalset.cardinal pts)
        Fmt.(list ~sep:comma string)
        (List.map (Solution.var_name solution) (Lvalset.to_list pts))
  | None -> Fmt.pr "no variable named y?!@.");

  (* the demand loader's accounting (Table 3's last columns) *)
  let ls = result.Andersen.loader_stats in
  Fmt.pr "loader: %d assignments in file, %d loaded, %d kept in core@."
    ls.Loader.s_in_file ls.Loader.s_loaded ls.Loader.s_in_core
