(* Resolving indirect calls: build a call graph for a dispatch-table style
   C program.  Function pointers are first-class objects in the analysis
   (Section 4's standardized argument/return variables), so the points-to
   set of each called pointer *is* the set of possible callees.

   Run with: dune exec examples/funptr_callgraph.exe *)

open Cla_core
open Cla_ir

let source =
  {|
int data1, data2;

int read_a(int *p) { return *p; }
int read_b(int *p) { return *p; }
int read_c(int *p) { return *p; }

int (*handlers[3])(int *);
int (*current)(int *);

void install(void) {
  handlers[0] = read_a;
  handlers[1] = read_b;
  current = handlers[2];
}

void late_bind(int which) {
  if (which) current = read_c;
}

int dispatch(void) {
  int r;
  r = (*current)(&data1);
  r = handlers[1](&data2);
  return r;
}
|}

let () =
  let view = Pipeline.compile_link [ ("dispatch.c", source) ] in
  let sol = Pipeline.points_to view in

  (* every indirect call site, with its resolved callees *)
  Fmt.pr "=== indirect call sites ===@.";
  Array.iter
    (fun (r : Objfile.indir_rec) ->
      let callees =
        Lvalset.to_list (Solution.points_to sol r.Objfile.iptr)
        |> List.filter (fun v -> Solution.var_kind sol v = Var.Func)
        |> List.map (Solution.var_name sol)
      in
      Fmt.pr "call through %s at %a -> {%a}@."
        (Solution.var_name sol r.Objfile.iptr)
        Loc.pp r.Objfile.iiloc
        Fmt.(list ~sep:comma string)
        callees)
    view.Objfile.rindirects;

  (* and the data consequence: both globals reach the readers' parameter *)
  Fmt.pr "@.=== what the handlers' parameter can point to ===@.";
  List.iter
    (fun f ->
      match Solution.find sol "p" with
      | Some _ ->
          (* parameters are function-local; look them up via the fundef
             records instead *)
          Array.iter
            (fun (fd : Objfile.fund_rec) ->
              if Solution.var_name sol fd.Objfile.ffvar = f then
                Array.iter
                  (fun arg ->
                    if arg >= 0 then
                      Fmt.pr "%s's %s -> {%a}@." f
                        (Solution.var_name sol arg)
                        Fmt.(list ~sep:comma string)
                        (List.map (Solution.var_name sol)
                           (Lvalset.to_list (Solution.points_to sol arg))))
                  fd.Objfile.fargs)
            view.Objfile.rfundefs
      | None -> ())
    [ "read_a"; "read_b"; "read_c" ]
